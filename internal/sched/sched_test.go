package sched

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// Every index must run exactly once, whatever the pool/parallelism
// shape.
func TestParallelForCoversAllItems(t *testing.T) {
	p := New(3)
	for _, n := range []int{0, 1, 2, 7, 100, 1000} {
		for _, par := range []int{1, 2, 4, 16} {
			counts := make([]atomic.Int32, n)
			p.ParallelFor(Morsel, n, par, func(i, slot int) {
				counts[i].Add(1)
			})
			for i := range counts {
				if got := counts[i].Load(); got != 1 {
					t.Fatalf("n=%d par=%d: item %d ran %d times", n, par, i, got)
				}
			}
		}
	}
}

// A nil pool and par=1 must degrade to a plain serial loop.
func TestParallelForSerialFallback(t *testing.T) {
	var order []int
	var nilPool *Pool
	nilPool.ParallelFor(Fanout, 5, 8, func(i, slot int) {
		if slot != 0 {
			t.Fatalf("serial fallback used slot %d", slot)
		}
		order = append(order, i)
	})
	for i, v := range order {
		if v != i {
			t.Fatalf("serial fallback out of order: %v", order)
		}
	}
	p := New(4)
	ran := 0
	p.ParallelFor(Morsel, 3, 1, func(i, slot int) { ran++ })
	if ran != 3 {
		t.Fatalf("par=1 ran %d of 3 items", ran)
	}
}

// Slots identify concurrent participants: no two goroutines may share
// a slot at the same time, and slots stay below par.
func TestParallelForSlotExclusivity(t *testing.T) {
	p := New(8)
	const n, par = 200, 4
	inSlot := make([]atomic.Int32, par)
	p.ParallelFor(Morsel, n, par, func(i, slot int) {
		if slot < 0 || slot >= par {
			t.Errorf("slot %d out of range [0,%d)", slot, par)
			return
		}
		if inSlot[slot].Add(1) != 1 {
			t.Errorf("slot %d used concurrently", slot)
		}
		time.Sleep(50 * time.Microsecond)
		inSlot[slot].Add(-1)
	})
}

// Total concurrency must stay within par (caller + par-1 helpers).
func TestParallelForBoundsConcurrency(t *testing.T) {
	p := New(16)
	const n, par = 64, 3
	var cur, max atomic.Int64
	p.ParallelFor(Morsel, n, par, func(i, slot int) {
		c := cur.Add(1)
		for {
			m := max.Load()
			if c <= m || max.CompareAndSwap(m, c) {
				break
			}
		}
		time.Sleep(100 * time.Microsecond)
		cur.Add(-1)
	})
	if got := max.Load(); got > par {
		t.Fatalf("observed %d concurrent items, par=%d", got, par)
	}
}

// A ParallelFor submitted from inside a pool-worker item must complete
// even when every other worker is blocked: the submitter helps itself.
func TestParallelForNestedNoDeadlock(t *testing.T) {
	p := New(2)
	// Saturate the pool: two long-running morsel loops whose items block
	// until released.
	release := make(chan struct{})
	var blockers sync.WaitGroup
	blockers.Add(2)
	go func() {
		p.ParallelFor(Morsel, 2, 2, func(i, slot int) {
			blockers.Done()
			<-release
		})
	}()
	blockers.Wait() // both pool-visible items are now blocked
	done := make(chan struct{})
	go func() {
		// Nested shape: an outer loop whose items run inner loops. With
		// the pool saturated, every item must run on the submitting
		// goroutines alone.
		p.ParallelFor(Fanout, 3, 4, func(i, slot int) {
			var sum atomic.Int64
			p.ParallelFor(Morsel, 8, 4, func(j, s int) { sum.Add(int64(j)) })
			if sum.Load() != 28 {
				t.Errorf("inner loop incomplete: %d", sum.Load())
			}
		})
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("nested ParallelFor deadlocked on a saturated pool")
	}
	close(release)
}

// Fan-out tickets must be served before morsel tickets when both wait.
func TestClassPriority(t *testing.T) {
	p := New(1)
	// Park the single worker inside a blocked item. With n=2 and two
	// participants (submitter + the worker) each claims one item, so
	// whichever goroutine gets slot != 0 is the pool worker.
	hold := make(chan struct{})
	started := make(chan struct{})
	go p.ParallelFor(Morsel, 2, 2, func(i, slot int) {
		if slot != 0 {
			close(started)
		}
		<-hold
	})
	<-started // the lone worker is now parked in a morsel item
	// Queue one morsel ticket, then one fan-out ticket, each from a
	// submitter that parks on its first item long enough for the
	// released worker to claim the second.
	var order []string
	var mu sync.Mutex
	record := func(s string) { mu.Lock(); order = append(order, s); mu.Unlock() }
	var wg sync.WaitGroup
	wg.Add(2)
	slow := func(kind string) func(i, slot int) {
		return func(i, slot int) {
			if slot == 0 {
				time.Sleep(100 * time.Millisecond)
				return
			}
			record(kind)
		}
	}
	go func() { defer wg.Done(); p.ParallelFor(Morsel, 2, 2, slow("morsel")) }()
	time.Sleep(5 * time.Millisecond)
	go func() { defer wg.Done(); p.ParallelFor(Fanout, 2, 2, slow("fanout")) }()
	time.Sleep(5 * time.Millisecond)
	close(hold) // free the worker; it must drain the fan-out ticket first
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if len(order) == 2 && order[0] == "morsel" {
		t.Fatalf("morsel ticket served before queued fan-out ticket: %v", order)
	}
}

// Ensure only grows and Workers reports the size; gauges return to
// zero when idle.
func TestEnsureAndStats(t *testing.T) {
	p := New(2)
	p.Ensure(4)
	p.Ensure(1)
	if got := p.Workers(); got != 4 {
		t.Fatalf("Workers() = %d, want 4", got)
	}
	p.ParallelFor(Fanout, 32, 4, func(i, slot int) { time.Sleep(10 * time.Microsecond) })
	// Helpers have finished their items once ParallelFor returns
	// (completion counts every item); busy may need a beat to settle as
	// workers decrement after run returns.
	deadline := time.Now().Add(2 * time.Second)
	for p.Busy() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("Busy() stuck at %d", p.Busy())
		}
		time.Sleep(time.Millisecond)
	}
	if q := p.Queued(Fanout) + p.Queued(Morsel); q != 0 {
		t.Fatalf("Queued() = %d after completion", q)
	}
}
