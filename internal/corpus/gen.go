package corpus

import (
	"fmt"
	"sort"
	"strings"
	"unicode/utf8"

	"mhxquery/internal/core"
	"mhxquery/internal/xmlparse"
)

// Params configures the synthetic manuscript generator. The generator
// produces the same four-hierarchy shape as the Boethius fixture —
// physical lines that cut across words, verse lines grouping words,
// editorial restoration spans and damage spans that respect no markup
// boundary — at arbitrary scale, with ground truth for checking query
// answers.
type Params struct {
	// Seed drives the deterministic generator; equal Params generate
	// equal corpora.
	Seed uint64
	// Words is the number of words in the base text.
	Words int
	// LineChars is the target length of a physical line in bytes
	// (default 28). Lines may split words, as in the manuscript.
	LineChars int
	// VerseWords is the number of words per verse line (default 5).
	VerseWords int
	// DamageRate is the per-word probability that a damage span starts
	// inside the word (default 0.08). Spans may extend into following
	// words, producing partial damage and markup overlap.
	DamageRate float64
	// RestoreRate is the per-word probability that a restoration span
	// starts inside the word (default 0.10).
	RestoreRate float64
}

func (p Params) withDefaults() Params {
	if p.Words <= 0 {
		p.Words = 200
	}
	if p.LineChars <= 0 {
		p.LineChars = 28
	}
	if p.VerseWords <= 0 {
		p.VerseWords = 5
	}
	if p.DamageRate == 0 {
		p.DamageRate = 0.08
	}
	if p.RestoreRate == 0 {
		p.RestoreRate = 0.10
	}
	return p
}

// Span is a half-open byte interval of the base text.
type Span struct{ Start, End int }

// Truth records ground-truth facts about a generated corpus, so tests can
// check query answers instead of eyeballing them.
type Truth struct {
	WordSpans    []Span
	VerseSpans   []Span
	LineSpans    []Span
	DamageSpans  []Span
	RestoreSpans []Span
	// DamagedWords lists indices into WordSpans of words intersecting at
	// least one damage span.
	DamagedWords []int
	// SplitWords lists indices of words crossing a physical line break.
	SplitWords []int
}

// Corpus is a generated synthetic manuscript.
type Corpus struct {
	Params Params
	Text   string
	// XML holds the four encodings keyed by hierarchy name (physical,
	// structure, restoration, damage).
	XML   map[string]string
	Truth Truth
}

// vocabulary of Old-English-flavoured words; the multi-byte runes (þ, æ,
// ð) deliberately exercise UTF-8 offset handling.
var vocab = []string{
	"se", "ond", "þa", "wæs", "mid", "ofer", "under", "cyning", "folc",
	"gesceaftum", "unawendendne", "singallice", "sibbe", "gecynde",
	"heofon", "eorðe", "wisdom", "weorc", "gewitt", "sawol", "lichoma",
	"freond", "feond", "dryhten", "rice", "gold", "seolfor", "treow",
	"wyrd", "willa", "andgit", "gemynd", "soðfæstnes", "leoht", "þeostru",
	"steorra", "sunne", "mona", "flod", "stream", "stan", "beorg", "dene",
	"holt", "feld", "hus", "heall", "duru", "weall", "boc",
}

// rng is a SplitMix64 generator: tiny, deterministic, stdlib-free.
type rng struct{ state uint64 }

func (r *rng) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *rng) intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.next() % uint64(n))
}

func (r *rng) float() float64 { return float64(r.next()>>11) / (1 << 53) }

// Generate builds a synthetic corpus for the given parameters.
func Generate(p Params) *Corpus {
	p = p.withDefaults()
	r := &rng{state: p.Seed ^ 0xABCD_EF01_2345_6789}

	words := make([]string, p.Words)
	for i := range words {
		words[i] = vocab[r.intn(len(vocab))]
	}
	text := strings.Join(words, " ")

	var truth Truth
	pos := 0
	for i, w := range words {
		truth.WordSpans = append(truth.WordSpans, Span{pos, pos + len(w)})
		pos += len(w)
		if i != len(words)-1 {
			pos++ // inter-word space
		}
	}

	// Verse lines: groups of VerseWords words, covering the inner spaces
	// and the trailing space up to the next verse (matching the fixture).
	for i := 0; i < len(words); i += p.VerseWords {
		j := i + p.VerseWords - 1
		if j >= len(words) {
			j = len(words) - 1
		}
		end := truth.WordSpans[j].End
		if j != len(words)-1 {
			end++ // trailing space inside the verse
		}
		truth.VerseSpans = append(truth.VerseSpans, Span{truth.WordSpans[i].Start, end})
	}

	// Physical lines: cut about every LineChars bytes, at rune boundaries,
	// ignoring word boundaries entirely.
	cut := 0
	for cut < len(text) {
		next := cut + p.LineChars - 2 + r.intn(5)
		if next >= len(text) {
			next = len(text)
		} else {
			for next > cut && !utf8.RuneStart(text[next]) {
				next--
			}
			if next == cut {
				next = len(text)
			}
		}
		truth.LineSpans = append(truth.LineSpans, Span{cut, next})
		cut = next
	}

	truth.DamageSpans = randomSpans(r, text, truth.WordSpans, p.DamageRate)
	truth.RestoreSpans = randomSpans(r, text, truth.WordSpans, p.RestoreRate)

	for i, w := range truth.WordSpans {
		for _, d := range truth.DamageSpans {
			if w.Start < d.End && d.Start < w.End {
				truth.DamagedWords = append(truth.DamagedWords, i)
				break
			}
		}
		for _, l := range truth.LineSpans {
			if l.Start > w.Start && l.Start < w.End {
				truth.SplitWords = append(truth.SplitWords, i)
				break
			}
		}
	}

	c := &Corpus{Params: p, Text: text, Truth: truth}
	c.XML = map[string]string{
		"physical":    tileDoc(text, truth.LineSpans, "line"),
		"structure":   verseDoc(text, truth, p),
		"restoration": spanDoc(text, truth.RestoreSpans, "res"),
		"damage":      spanDoc(text, truth.DamageSpans, "dmg"),
	}
	return c
}

// randomSpans drops non-overlapping spans over the text: with probability
// rate a span starts at a random offset inside a word and extends a random
// 1–9 bytes (clamped, rune-aligned, merged when they would collide).
func randomSpans(r *rng, text string, words []Span, rate float64) []Span {
	var spans []Span
	for _, w := range words {
		if r.float() >= rate {
			continue
		}
		start := w.Start + r.intn(w.End-w.Start)
		for start > 0 && !utf8.RuneStart(text[start]) {
			start--
		}
		end := start + 1 + r.intn(9)
		if end > len(text) {
			end = len(text)
		}
		for end < len(text) && !utf8.RuneStart(text[end]) {
			end++
		}
		spans = append(spans, Span{start, end})
	}
	sort.Slice(spans, func(i, j int) bool { return spans[i].Start < spans[j].Start })
	var merged []Span
	for _, s := range spans {
		if n := len(merged); n > 0 && s.Start <= merged[n-1].End {
			if s.End > merged[n-1].End {
				merged[n-1].End = s.End
			}
			continue
		}
		merged = append(merged, s)
	}
	return merged
}

// tileDoc encodes text fully tiled by one element kind (physical lines).
func tileDoc(text string, spans []Span, tag string) string {
	var b strings.Builder
	b.WriteString("<r>")
	for _, s := range spans {
		fmt.Fprintf(&b, "<%s>%s</%s>", tag, escape(text[s.Start:s.End]), tag)
	}
	b.WriteString("</r>")
	return b.String()
}

// spanDoc encodes text with non-overlapping spans wrapped in tag and the
// rest as plain text (restoration/damage shape).
func spanDoc(text string, spans []Span, tag string) string {
	var b strings.Builder
	b.WriteString("<r>")
	pos := 0
	for _, s := range spans {
		b.WriteString(escape(text[pos:s.Start]))
		fmt.Fprintf(&b, "<%s>%s</%s>", tag, escape(text[s.Start:s.End]), tag)
		pos = s.End
	}
	b.WriteString(escape(text[pos:]))
	b.WriteString("</r>")
	return b.String()
}

// verseDoc encodes verse lines containing word elements and inter-word
// spaces (structure shape).
func verseDoc(text string, truth Truth, p Params) string {
	var b strings.Builder
	b.WriteString("<r>")
	wi := 0
	for _, v := range truth.VerseSpans {
		b.WriteString("<vline>")
		pos := v.Start
		for wi < len(truth.WordSpans) && truth.WordSpans[wi].End <= v.End {
			w := truth.WordSpans[wi]
			b.WriteString(escape(text[pos:w.Start]))
			fmt.Fprintf(&b, "<w>%s</w>", escape(text[w.Start:w.End]))
			pos = w.End
			wi++
		}
		b.WriteString(escape(text[pos:v.End]))
		b.WriteString("</vline>")
	}
	b.WriteString("</r>")
	return b.String()
}

func escape(s string) string {
	s = strings.ReplaceAll(s, "&", "&amp;")
	s = strings.ReplaceAll(s, "<", "&lt;")
	return s
}

// Trees parses the four encodings of the corpus.
func (c *Corpus) Trees() ([]core.NamedTree, error) {
	var trees []core.NamedTree
	for _, name := range BoethiusHierarchies() {
		root, err := xmlparse.Parse(c.XML[name], xmlparse.Options{})
		if err != nil {
			return nil, fmt.Errorf("corpus: generated %s: %w", name, err)
		}
		trees = append(trees, core.NamedTree{Name: name, Root: root})
	}
	return trees, nil
}

// Document builds the KyGODDAG of the corpus.
func (c *Corpus) Document() (*core.Document, error) {
	trees, err := c.Trees()
	if err != nil {
		return nil, err
	}
	return core.Build(trees)
}
