// Package corpus provides the paper's running example (the Figure 1
// fragment of King Alfred's Boethius, Cotton Otho A.vi) and a seeded
// synthetic manuscript generator used by tests and benchmarks.
//
// The Figure 1 encodings in the paper are typeset loosely (inconsistent
// whitespace between the four encodings); the fixture below uses the
// canonical base text S with single spaces, so that all four encodings
// are exactly aligned — see DESIGN.md §4/§5.
package corpus

import (
	"fmt"

	"mhxquery/internal/core"
	"mhxquery/internal/xmlparse"
)

// BoethiusText is the base text S of the Figure 1 manuscript fragment.
const BoethiusText = "gesceaftum unawendendne singallice sibbe gecynde þa"

// The four Figure 1 encodings: physical manuscript organization (<line>),
// document structure (<vline>, <w>), editorial restorations (<res>) and
// manuscript condition (<dmg>).
const (
	BoethiusPhysical    = `<r><line>gesceaftum unawendendne sin</line><line>gallice sibbe gecynde þa</line></r>`
	BoethiusStructure   = `<r><vline><w>gesceaftum</w> <w>unawendendne</w> </vline><vline><w>singallice</w> <w>sibbe</w> <w>gecynde</w> </vline><vline><w>þa</w></vline></r>`
	BoethiusRestoration = `<r><res>gesceaftum una</res>wendendne s<res>in</res><res>gallice sibbe gecyn</res>de þa</r>`
	BoethiusDamage      = `<r>gesceaftum una<dmg>w</dmg>endendne singallice sibbe gecyn<dmg>de þa</dmg></r>`
)

// BoethiusHierarchies returns the hierarchy names of the fixture in
// document order.
func BoethiusHierarchies() []string {
	return []string{"physical", "structure", "restoration", "damage"}
}

// BoethiusXML returns the four encodings keyed by hierarchy name.
func BoethiusXML() map[string]string {
	return map[string]string{
		"physical":    BoethiusPhysical,
		"structure":   BoethiusStructure,
		"restoration": BoethiusRestoration,
		"damage":      BoethiusDamage,
	}
}

// BoethiusTrees parses the four encodings.
func BoethiusTrees() ([]core.NamedTree, error) {
	xml := BoethiusXML()
	var trees []core.NamedTree
	for _, name := range BoethiusHierarchies() {
		root, err := xmlparse.Parse(xml[name], xmlparse.Options{})
		if err != nil {
			return nil, fmt.Errorf("corpus: %s: %w", name, err)
		}
		trees = append(trees, core.NamedTree{Name: name, Root: root})
	}
	return trees, nil
}

// BoethiusDocument builds the KyGODDAG of Figure 2.
func BoethiusDocument() (*core.Document, error) {
	trees, err := BoethiusTrees()
	if err != nil {
		return nil, err
	}
	return core.Build(trees)
}

// MustBoethius is BoethiusDocument panicking on error, for tests and
// examples.
func MustBoethius() *core.Document {
	d, err := BoethiusDocument()
	if err != nil {
		panic(err)
	}
	return d
}
