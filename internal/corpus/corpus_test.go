package corpus

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"mhxquery/internal/dom"
	"mhxquery/internal/xmlparse"
)

func TestBoethiusFixtureParses(t *testing.T) {
	trees, err := BoethiusTrees()
	if err != nil {
		t.Fatal(err)
	}
	if len(trees) != 4 {
		t.Fatalf("trees = %d", len(trees))
	}
	for _, tr := range trees {
		if got := tr.Root.TextContent(); got != BoethiusText {
			t.Errorf("%s text = %q", tr.Name, got)
		}
	}
}

func TestBoethiusDocument(t *testing.T) {
	d, err := BoethiusDocument()
	if err != nil {
		t.Fatal(err)
	}
	if d.Text != BoethiusText {
		t.Errorf("text = %q", d.Text)
	}
	if len(d.Leaves) != 16 {
		t.Errorf("leaves = %d, want 16", len(d.Leaves))
	}
	if got := d.HierarchyNames(); !reflect.DeepEqual(got, BoethiusHierarchies()) {
		t.Errorf("hierarchies = %v", got)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Params{Seed: 5, Words: 50})
	b := Generate(Params{Seed: 5, Words: 50})
	if a.Text != b.Text {
		t.Error("same seed produced different texts")
	}
	for name := range a.XML {
		if a.XML[name] != b.XML[name] {
			t.Errorf("same seed produced different %s encodings", name)
		}
	}
	c := Generate(Params{Seed: 6, Words: 50})
	if a.Text == c.Text {
		t.Error("different seeds produced identical text")
	}
}

func TestGenerateDefaults(t *testing.T) {
	c := Generate(Params{Seed: 1})
	if len(c.Truth.WordSpans) != 200 {
		t.Errorf("default words = %d", len(c.Truth.WordSpans))
	}
}

func TestGeneratedCorpusBuilds(t *testing.T) {
	c := Generate(Params{Seed: 11, Words: 80, DamageRate: 0.3, RestoreRate: 0.3})
	d, err := c.Document()
	if err != nil {
		t.Fatal(err)
	}
	if d.Text != c.Text {
		t.Error("document text differs from corpus text")
	}
	// Words in the document match the generator's spans.
	h := d.HierarchyByName("structure")
	var spans []Span
	for _, n := range h.Nodes {
		if n.Kind == dom.Element && n.Name == "w" {
			spans = append(spans, Span{n.Start, n.End})
		}
	}
	if !reflect.DeepEqual(spans, c.Truth.WordSpans) {
		t.Error("parsed word spans differ from truth")
	}
}

func TestQuickGeneratedAlignment(t *testing.T) {
	f := func(seed uint64, wordsRaw uint8) bool {
		words := int(wordsRaw%120) + 5
		c := Generate(Params{Seed: seed, Words: words, DamageRate: 0.25, RestoreRate: 0.25})
		// Every encoding parses and encodes the same text.
		for name, xml := range c.XML {
			root, err := xmlparse.Parse(xml, xmlparse.Options{})
			if err != nil {
				t.Logf("seed %d: %s: %v", seed, name, err)
				return false
			}
			if root.TextContent() != c.Text {
				t.Logf("seed %d: %s text mismatch", seed, name)
				return false
			}
		}
		// Truth invariants.
		if len(c.Truth.LineSpans) == 0 || c.Truth.LineSpans[0].Start != 0 {
			return false
		}
		last := 0
		for _, l := range c.Truth.LineSpans {
			if l.Start != last || l.End <= l.Start {
				return false
			}
			last = l.End
		}
		if last != len(c.Text) {
			return false
		}
		for i := 1; i < len(c.Truth.DamageSpans); i++ {
			if c.Truth.DamageSpans[i-1].End > c.Truth.DamageSpans[i].Start {
				t.Logf("seed %d: overlapping damage spans", seed)
				return false
			}
		}
		// DamagedWords really intersect damage.
		for _, wi := range c.Truth.DamagedWords {
			w := c.Truth.WordSpans[wi]
			ok := false
			for _, d := range c.Truth.DamageSpans {
				if w.Start < d.End && d.Start < w.End {
					ok = true
				}
			}
			if !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestSplitWordsTruth(t *testing.T) {
	c := Generate(Params{Seed: 3, Words: 100})
	found := false
	for _, wi := range c.Truth.SplitWords {
		w := c.Truth.WordSpans[wi]
		crosses := false
		for _, l := range c.Truth.LineSpans {
			if l.Start > w.Start && l.Start < w.End {
				crosses = true
			}
		}
		if !crosses {
			t.Errorf("word %d marked split but no line boundary inside", wi)
		}
		found = true
	}
	if !found {
		t.Skip("no split words at this seed (unlikely)")
	}
}

func TestGeneratedXMLEscaping(t *testing.T) {
	// The vocabulary is safe, but escape() must still handle specials.
	if escape("a&b<c") != "a&amp;b&lt;c" {
		t.Error("escape broken")
	}
	if strings.Contains(Generate(Params{Seed: 1, Words: 10}).XML["physical"], "&amp;") {
		t.Log("vocabulary unexpectedly contains ampersands (harmless)")
	}
}
