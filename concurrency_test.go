// Concurrent-use tests backing the documented claims that a parsed
// Document is immutable and safe for concurrent use, that a Collection
// may interleave ingest and fan-out queries from many goroutines, and
// that copy-on-write updates give readers snapshot isolation: a reader
// always observes a consistent pre- or post-update version, never a
// mix. Run with -race (CI does).
package mhxquery_test

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"mhxquery"
	"mhxquery/internal/corpus"
)

// TestConcurrentDocumentQueries hammers one shared document from many
// goroutines, including analyze-string queries whose temporary
// hierarchies must stay private to each evaluation.
func TestConcurrentDocumentQueries(t *testing.T) {
	xml := corpus.BoethiusXML()
	var hs []mhxquery.Hierarchy
	for _, name := range corpus.BoethiusHierarchies() {
		hs = append(hs, mhxquery.Hierarchy{Name: name, XML: xml[name]})
	}
	d, err := mhxquery.Parse(hs...)
	if err != nil {
		t.Fatal(err)
	}
	queries := []struct{ src, want string }{
		{`count(/descendant::w[overlapping::line])`, "1"},
		{`for $w in /descendant::w[overlapping::page] return string($w)`, ""},
		{`string-join((for $l in /descendant::line return string($l)), "|")`,
			"gesceaftum unawendendne sin|gallice sibbe gecynde þa"},
		{`for $w in /descendant::w[string(.) = 'unawendendne']
		  return serialize(analyze-string($w, ".*un<a>a</a>we.*"))`,
			`<res><m>un<a>a</a>we</m>ndendne</res>`},
	}
	const goroutines, rounds = 16, 25
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				q := queries[(g+i)%len(queries)]
				got, err := d.QueryString(q.src)
				if err != nil {
					errs <- fmt.Errorf("goroutine %d: %v", g, err)
					return
				}
				if got != q.want {
					errs <- fmt.Errorf("goroutine %d: got %q, want %q", g, got, q.want)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestConcurrentCollection interleaves Put, Get, Names and QueryAll on
// one collection from many goroutines.
func TestConcurrentCollection(t *testing.T) {
	c := mhxquery.NewCollection(mhxquery.CollectionOptions{Workers: 4, CacheSize: 8})
	defer c.Close()

	mkDoc := func(seed uint64) *mhxquery.Document {
		g := corpus.Generate(corpus.Params{Seed: seed, Words: 40})
		var hs []mhxquery.Hierarchy
		for name, xml := range g.XML {
			hs = append(hs, mhxquery.Hierarchy{Name: name, XML: xml})
		}
		d, err := mhxquery.Parse(hs...)
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	// Seed a few documents so early QueryAll calls have work.
	for i := 0; i < 4; i++ {
		if _, err := c.Put(fmt.Sprintf("seed%d", i), mkDoc(uint64(i+1))); err != nil {
			t.Fatal(err)
		}
	}

	const writers, readers, rounds = 4, 8, 15
	// Parse on the test goroutine (mkDoc may t.Fatal); writers only Put.
	writerDocs := make([][]*mhxquery.Document, writers)
	for w := range writerDocs {
		writerDocs[w] = make([]*mhxquery.Document, rounds)
		for i := range writerDocs[w] {
			writerDocs[w][i] = mkDoc(uint64(100 + w*rounds + i))
		}
	}
	var wg sync.WaitGroup
	errs := make(chan error, writers+readers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				name := fmt.Sprintf("w%d-%d", w, i)
				if _, err := c.Put(name, writerDocs[w][i]); err != nil {
					errs <- fmt.Errorf("writer %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				switch i % 3 {
				case 0:
					results, err := c.QueryAll(`count(/descendant::w)`)
					if err != nil {
						errs <- fmt.Errorf("reader %d: %v", r, err)
						return
					}
					for _, res := range results {
						if res.Err != nil {
							errs <- fmt.Errorf("reader %d: %s: %v", r, res.Name, res.Err)
							return
						}
						if res.Result.String() != "40" {
							errs <- fmt.Errorf("reader %d: %s: got %q", r, res.Name, res.Result.String())
							return
						}
					}
				case 1:
					if _, err := c.Query("seed0", `sum(for $d in collection("seed*") return count($d/descendant::w))`); err != nil {
						errs <- fmt.Errorf("reader %d: %v", r, err)
						return
					}
				default:
					for _, name := range c.Names() {
						if _, ok := c.Get(name); !ok {
							// A concurrent writer may not have finished;
							// only seeds are guaranteed present.
							errs <- fmt.Errorf("reader %d: Names() returned missing %q", r, name)
							return
						}
					}
				}
			}
		}(r)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if got, want := c.Len(), 4+writers*rounds; got != want {
		t.Fatalf("final Len = %d, want %d", got, want)
	}
}

// annoDoc builds a document whose "anno" hierarchy holds n elements all
// named gen0. Each update renames EVERY anno element to the next
// generation in one atomic batch, so any consistent version has
// uniformly named anno elements — a reader observing two generations in
// one result has broken snapshot isolation.
func annoDoc(t testing.TB, n int) *mhxquery.Document {
	t.Helper()
	var words, anno strings.Builder
	words.WriteString("<r>")
	anno.WriteString("<r>")
	for i := 0; i < n; i++ {
		if i > 0 {
			words.WriteString(" ")
			anno.WriteString(" ")
		}
		fmt.Fprintf(&words, "<w>tok%02d</w>", i)
		fmt.Fprintf(&anno, "<gen0>tok%02d</gen0>", i)
	}
	words.WriteString("</r>")
	anno.WriteString("</r>")
	d, err := mhxquery.Parse(
		mhxquery.Hierarchy{Name: "words", XML: words.String()},
		mhxquery.Hierarchy{Name: "anno", XML: anno.String()},
	)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestSnapshotIsolationUnderUpdates commits a chain of versions while
// readers stream from whatever version they grabbed: every streamed
// result must be generation-uniform, and version numbers must ascend.
func TestSnapshotIsolationUnderUpdates(t *testing.T) {
	const elems, versions, readers = 12, 30, 8
	var current atomic.Pointer[mhxquery.Document]
	current.Store(annoDoc(t, elems))

	var wg sync.WaitGroup
	errs := make(chan error, readers+1)
	done := make(chan struct{})

	wg.Add(1)
	go func() { // the single writer
		defer wg.Done()
		defer close(done)
		for i := 0; i < versions; i++ {
			d := current.Load()
			nd, stats, err := d.Update(fmt.Sprintf(`rename node /descendant::*('anno') as "gen%d"`, i+1))
			if err != nil {
				errs <- fmt.Errorf("writer: version %d: %v", i+1, err)
				return
			}
			if stats.Edits != elems {
				errs <- fmt.Errorf("writer: version %d renamed %d elements, want %d", i+1, stats.Edits, elems)
				return
			}
			if nd.Version() != uint64(i+1) {
				errs <- fmt.Errorf("writer: Version() = %d, want %d", nd.Version(), i+1)
				return
			}
			current.Store(nd)
		}
	}()

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				d := current.Load()
				st, err := d.Stream(context.Background(), `/descendant::*('anno')`)
				if err != nil {
					errs <- fmt.Errorf("reader %d: %v", r, err)
					return
				}
				// Pull item by item: the stream spans many writer
				// commits, yet must stay inside its snapshot.
				first := ""
				n := 0
				for {
					item, ok, err := st.Next()
					if err != nil {
						errs <- fmt.Errorf("reader %d: %v", r, err)
						return
					}
					if !ok {
						break
					}
					name := item.Item(0).Node().Name()
					if first == "" {
						first = name
					} else if name != first {
						errs <- fmt.Errorf("reader %d: torn read: %s then %s in one stream", r, first, name)
						return
					}
					n++
				}
				if n != elems {
					errs <- fmt.Errorf("reader %d: streamed %d elements, want %d", r, n, elems)
					return
				}
			}
		}(r)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if got := current.Load().Version(); got != versions {
		t.Fatalf("final version = %d, want %d", got, versions)
	}
}

// TestCollectionSnapshotIsolationUnderUpdates is the collection-level
// half: writers commit versions through Collection.Update (publish +
// write-through) while fan-out and streaming readers run; every
// per-document result must be generation-uniform and no evaluation may
// fail.
func TestCollectionSnapshotIsolationUnderUpdates(t *testing.T) {
	const docs, versions, readers = 3, 12, 6
	dir := t.TempDir()
	c, err := mhxquery.OpenCollection(dir, mhxquery.CollectionOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < docs; i++ {
		if _, err := c.Put(fmt.Sprintf("doc%d", i), annoDoc(t, 8)); err != nil {
			t.Fatal(err)
		}
	}
	uniform := `count(distinct-values(for $x in /descendant::*('anno') return name($x)))`

	var wg sync.WaitGroup
	errs := make(chan error, docs+readers)
	done := make(chan struct{})
	var writersDone sync.WaitGroup
	for w := 0; w < docs; w++ {
		wg.Add(1)
		writersDone.Add(1)
		go func(w int) {
			defer wg.Done()
			defer writersDone.Done()
			name := fmt.Sprintf("doc%d", w)
			for i := 0; i < versions; i++ {
				if _, _, err := c.Update(name, fmt.Sprintf(`rename node /descendant::*('anno') as "gen%d_%d"`, w, i+1)); err != nil {
					errs <- fmt.Errorf("writer %s: %v", name, err)
					return
				}
			}
		}(w)
	}
	go func() { writersDone.Wait(); close(done) }()

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				if r%2 == 0 {
					results, err := c.QueryAll(uniform)
					if err != nil {
						errs <- fmt.Errorf("reader %d: %v", r, err)
						return
					}
					for _, res := range results {
						if res.Err != nil {
							errs <- fmt.Errorf("reader %d: %s: %v", r, res.Name, res.Err)
							return
						}
						if res.Result.String() != "1" {
							errs <- fmt.Errorf("reader %d: %s: torn fan-out read: %s generations", r, res.Name, res.Result.String())
							return
						}
					}
					continue
				}
				cs, err := c.StreamMatching(context.Background(), "", `/descendant::*('anno')`)
				if err != nil {
					errs <- fmt.Errorf("reader %d: %v", r, err)
					return
				}
				perDoc := map[string]string{}
				for {
					row, ok := cs.Next()
					if !ok {
						break
					}
					if row.Err != nil {
						errs <- fmt.Errorf("reader %d: %s: %v", r, row.Doc, row.Err)
						return
					}
					name := row.Item.Item(0).Node().Name()
					if prev, seen := perDoc[row.Doc]; seen && prev != name {
						errs <- fmt.Errorf("reader %d: %s: torn stream read: %s then %s", r, row.Doc, prev, name)
						return
					}
					perDoc[row.Doc] = name
				}
			}
		}(r)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	// The last committed versions survived write-through persistence.
	c2, err := mhxquery.OpenCollection(dir, mhxquery.CollectionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	for w := 0; w < docs; w++ {
		name := fmt.Sprintf("doc%d", w)
		res, err := c2.Query(name, fmt.Sprintf(`count(//gen%d_%d)`, w, versions))
		if err != nil {
			t.Fatal(err)
		}
		if res.String() != "8" {
			t.Fatalf("%s reloaded: final generation count = %s, want 8", name, res.String())
		}
	}
}
