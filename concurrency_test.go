// Concurrent-use tests backing the documented claims that a parsed
// Document is immutable and safe for concurrent use, and that a
// Collection may interleave ingest and fan-out queries from many
// goroutines. Run with -race (CI does).
package mhxquery_test

import (
	"fmt"
	"sync"
	"testing"

	"mhxquery"
	"mhxquery/internal/corpus"
)

// TestConcurrentDocumentQueries hammers one shared document from many
// goroutines, including analyze-string queries whose temporary
// hierarchies must stay private to each evaluation.
func TestConcurrentDocumentQueries(t *testing.T) {
	xml := corpus.BoethiusXML()
	var hs []mhxquery.Hierarchy
	for _, name := range corpus.BoethiusHierarchies() {
		hs = append(hs, mhxquery.Hierarchy{Name: name, XML: xml[name]})
	}
	d, err := mhxquery.Parse(hs...)
	if err != nil {
		t.Fatal(err)
	}
	queries := []struct{ src, want string }{
		{`count(/descendant::w[overlapping::line])`, "1"},
		{`for $w in /descendant::w[overlapping::page] return string($w)`, ""},
		{`string-join((for $l in /descendant::line return string($l)), "|")`,
			"gesceaftum unawendendne sin|gallice sibbe gecynde þa"},
		{`for $w in /descendant::w[string(.) = 'unawendendne']
		  return serialize(analyze-string($w, ".*un<a>a</a>we.*"))`,
			`<res><m>un<a>a</a>we</m>ndendne</res>`},
	}
	const goroutines, rounds = 16, 25
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				q := queries[(g+i)%len(queries)]
				got, err := d.QueryString(q.src)
				if err != nil {
					errs <- fmt.Errorf("goroutine %d: %v", g, err)
					return
				}
				if got != q.want {
					errs <- fmt.Errorf("goroutine %d: got %q, want %q", g, got, q.want)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestConcurrentCollection interleaves Put, Get, Names and QueryAll on
// one collection from many goroutines.
func TestConcurrentCollection(t *testing.T) {
	c := mhxquery.NewCollection(mhxquery.CollectionOptions{Workers: 4, CacheSize: 8})
	defer c.Close()

	mkDoc := func(seed uint64) *mhxquery.Document {
		g := corpus.Generate(corpus.Params{Seed: seed, Words: 40})
		var hs []mhxquery.Hierarchy
		for name, xml := range g.XML {
			hs = append(hs, mhxquery.Hierarchy{Name: name, XML: xml})
		}
		d, err := mhxquery.Parse(hs...)
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	// Seed a few documents so early QueryAll calls have work.
	for i := 0; i < 4; i++ {
		if _, err := c.Put(fmt.Sprintf("seed%d", i), mkDoc(uint64(i+1))); err != nil {
			t.Fatal(err)
		}
	}

	const writers, readers, rounds = 4, 8, 15
	// Parse on the test goroutine (mkDoc may t.Fatal); writers only Put.
	writerDocs := make([][]*mhxquery.Document, writers)
	for w := range writerDocs {
		writerDocs[w] = make([]*mhxquery.Document, rounds)
		for i := range writerDocs[w] {
			writerDocs[w][i] = mkDoc(uint64(100 + w*rounds + i))
		}
	}
	var wg sync.WaitGroup
	errs := make(chan error, writers+readers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				name := fmt.Sprintf("w%d-%d", w, i)
				if _, err := c.Put(name, writerDocs[w][i]); err != nil {
					errs <- fmt.Errorf("writer %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				switch i % 3 {
				case 0:
					results, err := c.QueryAll(`count(/descendant::w)`)
					if err != nil {
						errs <- fmt.Errorf("reader %d: %v", r, err)
						return
					}
					for _, res := range results {
						if res.Err != nil {
							errs <- fmt.Errorf("reader %d: %s: %v", r, res.Name, res.Err)
							return
						}
						if res.Result.String() != "40" {
							errs <- fmt.Errorf("reader %d: %s: got %q", r, res.Name, res.Result.String())
							return
						}
					}
				case 1:
					if _, err := c.Query("seed0", `sum(for $d in collection("seed*") return count($d/descendant::w))`); err != nil {
						errs <- fmt.Errorf("reader %d: %v", r, err)
						return
					}
				default:
					for _, name := range c.Names() {
						if _, ok := c.Get(name); !ok {
							// A concurrent writer may not have finished;
							// only seeds are guaranteed present.
							errs <- fmt.Errorf("reader %d: Names() returned missing %q", r, name)
							return
						}
					}
				}
			}
		}(r)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if got, want := c.Len(), 4+writers*rounds; got != want {
		t.Fatalf("final Len = %d, want %d", got, want)
	}
}
