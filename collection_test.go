package mhxquery_test

import (
	"strings"
	"testing"

	"mhxquery"
)

// putHiers ingests a two-hierarchy document built from pages/words XML.
func putHiers(t *testing.T, c *mhxquery.Collection, name, pages, words string) {
	t.Helper()
	d, err := mhxquery.Parse(
		mhxquery.Hierarchy{Name: "pages", XML: pages},
		mhxquery.Hierarchy{Name: "words", XML: words},
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Put(name, d); err != nil {
		t.Fatal(err)
	}
}

func testCollection(t *testing.T) *mhxquery.Collection {
	t.Helper()
	c := mhxquery.NewCollection(mhxquery.CollectionOptions{})
	putHiers(t, c, "hello",
		`<r><page>Hello wo</page><page>rld</page></r>`,
		`<r><w>Hello</w> <w>world</w></r>`)
	putHiers(t, c, "greet",
		`<r><page>Good day</page></r>`,
		`<r><w>Good</w> <w>day</w></r>`)
	return c
}

func TestCollectionPublicAPI(t *testing.T) {
	c := testCollection(t)
	defer c.Close()

	if got := strings.Join(c.Names(), ","); got != "greet,hello" {
		t.Fatalf("Names = %q", got)
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d", c.Len())
	}
	if d, ok := c.Get("hello"); !ok || d.Text() != "Hello world" {
		t.Fatalf("Get(hello): ok=%v", ok)
	}

	// Single-document query with a cross-document doc() reference.
	res, err := c.Query("hello", `string-join((for $w in doc("greet")/descendant::w return string($w)), " ")`)
	if err != nil {
		t.Fatal(err)
	}
	if res.String() != "Good day" {
		t.Fatalf("doc() query = %q", res.String())
	}

	// Fan-out across the corpus: which words split across a page boundary?
	results, err := c.QueryAll(`for $w in /descendant::w[overlapping::page] return string($w)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("got %d results", len(results))
	}
	byName := map[string]string{}
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("%s: %v", r.Name, r.Err)
		}
		byName[r.Name] = r.Result.String()
	}
	if byName["hello"] != "world" || byName["greet"] != "" {
		t.Fatalf("fan-out results = %v", byName)
	}

	// Glob-restricted fan-out.
	results, err = c.QueryMatching("h*", `count(/descendant::w)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || results[0].Name != "hello" || results[0].Result.String() != "2" {
		t.Fatalf("QueryMatching = %+v", results)
	}

	// The compiled-query cache saw the repeated sources.
	if st := c.CacheStats(); st.Misses == 0 || st.Capacity != 128 {
		t.Fatalf("CacheStats = %+v", st)
	}
}

func TestCollectionPersistencePublic(t *testing.T) {
	dir := t.TempDir()
	c, err := mhxquery.OpenCollection(dir, mhxquery.CollectionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	putHiers(t, c, "hello",
		`<r><page>Hello wo</page><page>rld</page></r>`,
		`<r><w>Hello</w> <w>world</w></r>`)
	c.Close()

	c2, err := mhxquery.OpenCollection(dir, mhxquery.CollectionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := c2.Query("hello", `string(/descendant::w[overlapping::page])`)
	if err != nil {
		t.Fatal(err)
	}
	if res.String() != "world" {
		t.Fatalf("reloaded query = %q", res.String())
	}
}
