package mhxquery_test

import (
	"fmt"
	"log"

	"mhxquery"
)

// Example demonstrates the headline capability: a word split across a
// page boundary cannot be expressed — let alone queried — in a single
// XML tree; with two concurrent hierarchies it is one axis step.
func Example() {
	doc, err := mhxquery.Parse(
		mhxquery.Hierarchy{Name: "pages", XML: `<r><page>Hello wo</page><page>rld</page></r>`},
		mhxquery.Hierarchy{Name: "words", XML: `<r><w>Hello</w> <w>world</w></r>`},
	)
	if err != nil {
		log.Fatal(err)
	}
	out, err := doc.QueryString(`for $w in /descendant::w[overlapping::page] return string($w)`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(out)
	// Output: world
}

// ExampleDocument_Query shows a FLWOR query with an element constructor
// over the multihierarchical document.
func ExampleDocument_Query() {
	doc, err := mhxquery.Parse(
		mhxquery.Hierarchy{Name: "pages", XML: `<r><page>Hello wo</page><page>rld</page></r>`},
		mhxquery.Hierarchy{Name: "words", XML: `<r><w>Hello</w> <w>world</w></r>`},
	)
	if err != nil {
		log.Fatal(err)
	}
	res, err := doc.Query(`for $w in /descendant::w
return <word split="{if ($w[overlapping::page]) then "yes" else "no"}">{string($w)}</word>`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.String())
	// Output: <word split="no">Hello</word><word split="yes">world</word>
}

// ExampleQuery_EvalWith shows analyze-string (Definition 4 of the paper)
// with an externally bound pattern: matches become a temporary markup
// hierarchy that can be queried like any other.
func ExampleQuery_EvalWith() {
	doc, err := mhxquery.Parse(
		mhxquery.Hierarchy{Name: "pages", XML: `<r><page>Hello wo</page><page>rld</page></r>`},
		mhxquery.Hierarchy{Name: "words", XML: `<r><w>Hello</w> <w>world</w></r>`},
	)
	if err != nil {
		log.Fatal(err)
	}
	q := mhxquery.MustCompile(
		`for $m in analyze-string(/, $pattern)/descendant::m
return <hit text="{string($m)}" crossesPages="{if ($m[overlapping::page]) then "yes" else "no"}"/>`)
	res, err := q.EvalWith(doc, map[string]any{"pattern": "[lr]d?"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.String())
	// Output: <hit text="l" crossesPages="no"/><hit text="l" crossesPages="no"/><hit text="r" crossesPages="no"/><hit text="ld" crossesPages="no"/>
}
