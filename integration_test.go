package mhxquery_test

import (
	"bytes"
	"fmt"
	"regexp"
	"strconv"
	"testing"

	"mhxquery"
	"mhxquery/internal/corpus"
)

// These tests exercise the full stack — generator → parser → KyGODDAG →
// extended XQuery — and check query answers against the generator's
// ground truth rather than against hand-computed expectations.

func generated(t *testing.T, seed uint64, words int) (*mhxquery.Document, *corpus.Corpus) {
	t.Helper()
	c := corpus.Generate(corpus.Params{Seed: seed, Words: words, DamageRate: 0.15, RestoreRate: 0.15})
	var hs []mhxquery.Hierarchy
	for _, name := range corpus.BoethiusHierarchies() {
		hs = append(hs, mhxquery.Hierarchy{Name: name, XML: c.XML[name]})
	}
	d, err := mhxquery.Parse(hs...)
	if err != nil {
		t.Fatal(err)
	}
	return d, c
}

func queryInt(t *testing.T, d *mhxquery.Document, src string) int {
	t.Helper()
	out, err := d.QueryString(src)
	if err != nil {
		t.Fatalf("%v\nquery: %s", err, src)
	}
	n, err := strconv.Atoi(out)
	if err != nil {
		t.Fatalf("non-numeric result %q for %s", out, src)
	}
	return n
}

func TestIntegrationDamagedWordsMatchTruth(t *testing.T) {
	for _, seed := range []uint64{1, 2, 77} {
		d, c := generated(t, seed, 150)
		got := queryInt(t, d,
			`count(/descendant::w[xancestor::dmg or xdescendant::dmg or overlapping::dmg])`)
		if got != len(c.Truth.DamagedWords) {
			t.Errorf("seed %d: damaged words = %d, truth %d", seed, got, len(c.Truth.DamagedWords))
		}
	}
}

func TestIntegrationSplitWordsMatchTruth(t *testing.T) {
	for _, seed := range []uint64{1, 5, 99} {
		d, c := generated(t, seed, 150)
		got := queryInt(t, d, `count(/descendant::w[overlapping::line])`)
		if got != len(c.Truth.SplitWords) {
			t.Errorf("seed %d: split words = %d, truth %d", seed, got, len(c.Truth.SplitWords))
		}
	}
}

func TestIntegrationWordAndLineCensus(t *testing.T) {
	d, c := generated(t, 11, 120)
	if got := queryInt(t, d, `count(/descendant::w)`); got != len(c.Truth.WordSpans) {
		t.Errorf("words = %d, truth %d", got, len(c.Truth.WordSpans))
	}
	if got := queryInt(t, d, `count(/descendant::line)`); got != len(c.Truth.LineSpans) {
		t.Errorf("lines = %d, truth %d", got, len(c.Truth.LineSpans))
	}
	if got := queryInt(t, d, `count(/descendant::vline)`); got != len(c.Truth.VerseSpans) {
		t.Errorf("verses = %d, truth %d", got, len(c.Truth.VerseSpans))
	}
	// Every word is xdescendant of exactly one verse line.
	total := 0
	for i := 1; i <= len(c.Truth.VerseSpans); i++ {
		total += queryInt(t, d, fmt.Sprintf(`count(/descendant::vline[%d]/xdescendant::w)`, i))
	}
	if total != len(c.Truth.WordSpans) {
		t.Errorf("verse-partitioned words = %d, truth %d", total, len(c.Truth.WordSpans))
	}
}

func TestIntegrationAnalyzeStringMatchesRegexp(t *testing.T) {
	d, c := generated(t, 21, 100)
	pattern := "e[a-z]r"
	re := regexp.MustCompile(pattern)
	want := 0
	for _, m := range re.FindAllStringIndex(c.Text, -1) {
		if m[0] != m[1] {
			want++
		}
	}
	q := mhxquery.MustCompile(`count(analyze-string(/, $p)/descendant::m)`)
	res, err := q.EvalWith(d, map[string]any{"p": pattern})
	if err != nil {
		t.Fatal(err)
	}
	if res.String() != strconv.Itoa(want) {
		t.Errorf("analyze-string matches = %s, regexp says %d", res.String(), want)
	}
}

func TestIntegrationRestorationCoverage(t *testing.T) {
	d, c := generated(t, 31, 120)
	// Sum of restoration span lengths via the mh: extension functions
	// equals the ground-truth coverage.
	out, err := d.QueryString(
		`sum(for $r in /descendant::res('restoration') return span-end($r) - span-start($r))`)
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, s := range c.Truth.RestoreSpans {
		want += s.End - s.Start
	}
	if out != strconv.Itoa(want) {
		t.Errorf("restored bytes = %s, truth %d", out, want)
	}
}

func TestIntegrationLeafPartitionTilesText(t *testing.T) {
	d, _ := generated(t, 41, 80)
	prevEnd := 0
	for _, l := range d.Leaves() {
		s, e := l.Span()
		if s != prevEnd {
			t.Fatalf("leaf gap at %d", s)
		}
		if l.Text() != d.Text()[s:e] {
			t.Fatalf("leaf text mismatch at %d", s)
		}
		prevEnd = e
	}
	if prevEnd != len(d.Text()) {
		t.Fatalf("leaves end at %d, text length %d", prevEnd, len(d.Text()))
	}
}

func TestIntegrationStoreRoundTripQueries(t *testing.T) {
	d, c := generated(t, 51, 100)
	var img bytes.Buffer
	if err := d.Save(&img); err != nil {
		t.Fatal(err)
	}
	d2, err := mhxquery.ReadDocument(&img)
	if err != nil {
		t.Fatal(err)
	}
	got := queryInt(t, d2,
		`count(/descendant::w[xancestor::dmg or xdescendant::dmg or overlapping::dmg])`)
	if got != len(c.Truth.DamagedWords) {
		t.Errorf("damaged words after store round-trip = %d, truth %d", got, len(c.Truth.DamagedWords))
	}
}
