#!/usr/bin/env sh
# bench.sh — run the evaluator benchmark suite and record the results.
#
# Runs the evaluator-level benchmarks (the paper queries E3–E7, the
# P9 path-pipeline fixtures, the P10 indexed-descendant fixtures, the
# P11 early-exit/FLWOR cursor fixtures, the P12 copy-on-write
# update fixtures, the P13 durable-update fixtures, WAL vs
# write-through, the P14 morsel-parallel scan fixtures at
# 1/2/4/GOMAXPROCS workers, and the P16 cost-based plan-choice
# fixtures) with -count repetitions, prints the raw
# `go test -bench` output, and writes the best (minimum ns/op) run per
# benchmark to a JSON file so the perf trajectory is diffable in git.
#
# Usage:
#   scripts/bench.sh [-count N] [-bench REGEX] [-out FILE]
#
# Defaults: -count 5, the evaluator benchmark set, -out BENCH_eval.json.
set -eu

COUNT=5
BENCH='BenchmarkOpenCold|BenchmarkOpenFirstQuery|BenchmarkQuery|BenchmarkPathPipeline|BenchmarkExample1AnalyzeString|BenchmarkIndexedDescendant|BenchmarkEarlyExit|BenchmarkFLWORJoin|BenchmarkUpdateSmallEdit|BenchmarkUpdateLargestHier|BenchmarkUpdateReparse|BenchmarkUpdateExpression|BenchmarkUpdateDurable|BenchmarkParallelScan|BenchmarkPlanChoice'
OUT=BENCH_eval.json
while [ $# -gt 0 ]; do
	case "$1" in
	-count) COUNT=$2; shift 2 ;;
	-bench) BENCH=$2; shift 2 ;;
	-out) OUT=$2; shift 2 ;;
	*) echo "usage: $0 [-count N] [-bench REGEX] [-out FILE]" >&2; exit 2 ;;
	esac
done

cd "$(dirname "$0")/.."
TMP=$(mktemp)
trap 'rm -f "$TMP"' EXIT

go test -run '^$' -bench "$BENCH" -benchmem -count "$COUNT" . | tee "$TMP"

GOVER=$(go version | awk '{print $3}')
awk -v count="$COUNT" -v gover="$GOVER" '
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	ns = ""; bytes = ""; allocs = ""
	for (i = 2; i <= NF; i++) {
		if ($i == "ns/op") ns = $(i-1)
		if ($i == "B/op") bytes = $(i-1)
		if ($i == "allocs/op") allocs = $(i-1)
	}
	if (ns == "") next
	if (!(name in minns) || ns + 0 < minns[name] + 0) {
		minns[name] = ns; mb[name] = bytes; ma[name] = allocs
	}
	if (!(name in seen)) { seen[name] = 1; order[++n] = name }
}
END {
	printf "{\n"
	printf "  \"_meta\": {\"go\": \"%s\", \"count\": %d, \"stat\": \"min\"},\n", gover, count
	for (i = 1; i <= n; i++) {
		nm = order[i]
		printf "  \"%s\": {\"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}%s\n", \
			nm, minns[nm], (mb[nm] == "" ? 0 : mb[nm]), (ma[nm] == "" ? 0 : ma[nm]), (i < n ? "," : "")
	}
	printf "}\n"
}' "$TMP" >"$OUT"

# Engine-health numbers next to the latency numbers: a fixed query
# burst (scripts/metricsprobe) reports plan/compile cache hit rates and
# name-index build counts from the metrics registry, merged into the
# JSON under "_metrics" so cache regressions are diffable in git too.
METRICS=$(go run ./scripts/metricsprobe)
awk -v metrics="$METRICS" 'NR == 1 { print; printf "  \"_metrics\": %s,\n", metrics; next } { print }' \
	"$OUT" >"$TMP" && cp "$TMP" "$OUT"

echo "wrote $OUT"
