#!/usr/bin/env sh
# crashsmoke.sh — end-to-end crash-recovery smoke test over HTTP.
#
# Boots mhserve on a fresh corpus directory, seeds a document, drives a
# PATCH update burst recording every acknowledged version, SIGKILLs the
# server mid-burst, restarts it on the same directory, waits for
# /readyz to flip back to 200 (write-ahead log replay done), and
# asserts zero acked-commit loss: the first post-restart update must
# commit a version strictly above every version acknowledged before the
# kill — possible only if recovery replayed every acked commit.
#
# Artifacts: recovery.log (both server runs' structured logs, including
# the "collection ready" replay line) and acked.txt (the ack record).
# Run from the repository root: sh scripts/crashsmoke.sh
set -eu

ADDR=localhost:8081
DIR=$(mktemp -d)
PID= ; PID2= ; BURST=
cleanup() {
	[ -n "$BURST" ] && kill "$BURST" 2>/dev/null || true
	[ -n "$PID" ] && kill -9 "$PID" 2>/dev/null || true
	[ -n "$PID2" ] && kill -9 "$PID2" 2>/dev/null || true
	rm -rf "$DIR"
}
trap cleanup EXIT

wait_ready() {
	for _ in $(seq 1 100); do
		code=$(curl -s -o /dev/null -w '%{http_code}' "$ADDR/readyz" || true)
		[ "$code" = 200 ] && return 0
		sleep 0.1
	done
	echo "crashsmoke: /readyz never reached 200 (last: ${code:-none})" >&2
	return 1
}

go build -o mhserve ./cmd/mhserve

# Small snapshot interval so the kill lands across the whole policy:
# some updates snapshotted, some only in the log, possibly one torn.
./mhserve -dir "$DIR" -addr "$ADDR" -wal-flush 1ms -snapshot-every 8 2>recovery.log &
PID=$!
wait_ready

curl -fs -X PUT "$ADDR/docs/crash" -d '{"hierarchies":[
  {"name":"pages","xml":"<r><page>Hello wo</page><page>rld</page></r>"},
  {"name":"words","xml":"<r><w>Hello</w> <w>world</w></r>"}]}' >/dev/null

# The burst: acked versions are recorded only after the full 200
# response is read, so acked.txt is a conservative watermark of what
# the server promised durable.
: >acked.txt
(
	while :; do
		v=$(curl -fs -X PATCH "$ADDR/docs/crash" \
			-d '{"update":"rename node (//w)[1] as \"w\""}' |
			sed -n 's/.*"version":\([0-9]*\).*/\1/p') || break
		[ -n "$v" ] || break
		echo "$v" >>acked.txt
	done
) &
BURST=$!

sleep 1 # let commits (and a few background snapshots) land
kill -9 "$PID"
PID=
wait "$BURST" 2>/dev/null || true
BURST=

ACKED=$(tail -n 1 acked.txt 2>/dev/null || true)
[ -n "$ACKED" ] || { echo "crashsmoke: burst acked nothing before the kill" >&2; exit 1; }
echo "crashsmoke: SIGKILL after $(wc -l <acked.txt) acked updates (last version $ACKED)"

# Restart on the same directory: replay must finish and flip /readyz.
./mhserve -dir "$DIR" -addr "$ADDR" 2>>recovery.log &
PID2=$!
wait_ready
grep -q '"msg":"collection ready"' recovery.log ||
	{ echo "crashsmoke: no recovery log line" >&2; exit 1; }

# Zero acked-commit loss: recovery restored revision >= ACKED, so the
# next update commits strictly above it. A lost commit would surface
# here as a version <= ACKED.
V=$(curl -fs -X PATCH "$ADDR/docs/crash" \
	-d '{"update":"rename node (//w)[1] as \"w\""}' |
	sed -n 's/.*"version":\([0-9]*\).*/\1/p')
[ -n "$V" ] && [ "$V" -gt "$ACKED" ] ||
	{ echo "crashsmoke: post-recovery version ${V:-none} <= acked $ACKED: acked commit lost" >&2; exit 1; }

grep '"msg":"collection ready"' recovery.log | tail -n 1
echo "crashsmoke: ok — acked $ACKED survived the crash, recovered to version $V"
