// Command metricsprobe drives a fixed query burst against a small
// collection and prints one JSON object of engine-health numbers —
// plan/compile cache hit rates and structural name-index build counts
// — read from the collection's metrics registry. scripts/bench.sh
// merges the object into BENCH_eval.json (under "_metrics") so cache
// effectiveness is tracked in git next to the latency numbers: a
// planner or cache regression shows up as a hit-rate drop even when
// ns/op stays flat.
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"os"
	"sort"

	"mhxquery"
	"mhxquery/internal/corpus"
)

// The burst mirrors how the caches are exercised in production: a
// fixed set of queries fanned out repeatedly, so the first round
// misses and every later round hits.
const rounds = 8

var queries = []string{
	`count(/descendant::w)`,
	`for $w in /descendant::w[overlapping::line] return string($w)`,
	`//w[@rend]`,
	`for $l in /descendant::line return count($l/xdescendant::w)`,
}

func main() {
	coll := mhxquery.NewCollection(mhxquery.CollectionOptions{Workers: 4})
	xml := corpus.BoethiusXML()
	names := make([]string, 0, len(xml))
	for name := range xml {
		names = append(names, name)
	}
	sort.Strings(names)
	// Four copies of the fixture so the fan-out pool has real work.
	for i := 0; i < 4; i++ {
		var hs []mhxquery.Hierarchy
		for _, name := range names {
			hs = append(hs, mhxquery.Hierarchy{Name: name, XML: xml[name]})
		}
		doc, err := mhxquery.Parse(hs...)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := coll.Put(fmt.Sprintf("boethius%d", i), doc); err != nil {
			log.Fatal(err)
		}
	}

	for r := 0; r < rounds; r++ {
		for _, q := range queries {
			if _, err := coll.QueryAll(q); err != nil {
				log.Fatalf("%s: %v", q, err)
			}
		}
	}

	snap := coll.Metrics().Snapshot()
	rate := func(cache string) float64 {
		hit := snap[`mhx_cache_requests_total{cache="`+cache+`",result="hit"}`]
		miss := snap[`mhx_cache_requests_total{cache="`+cache+`",result="miss"}`]
		if hit+miss == 0 {
			return 0
		}
		return hit / (hit + miss)
	}
	out := map[string]any{
		"plan_cache_hit_rate":    rate("plan"),
		"compile_cache_hit_rate": rate("compile"),
		"nameindex_builds":       snap["mhx_nameindex_builds_total"],
		"queries_evaluated":      snap["mhx_query_seconds_count"],
	}
	enc := json.NewEncoder(os.Stdout)
	if err := enc.Encode(out); err != nil {
		log.Fatal(err)
	}
}
