// Command metricsprobe drives a fixed query burst against a small
// collection and prints one JSON object of engine-health numbers —
// plan/compile cache hit rates and structural name-index build counts
// — read from the collection's metrics registry. scripts/bench.sh
// merges the object into BENCH_eval.json (under "_metrics") so cache
// effectiveness is tracked in git next to the latency numbers: a
// planner or cache regression shows up as a hit-rate drop even when
// ns/op stays flat.
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"mhxquery"
	"mhxquery/internal/corpus"
)

// The burst mirrors how the caches are exercised in production: a
// fixed set of queries fanned out repeatedly, so the first round
// misses and every later round hits.
const rounds = 8

var queries = []string{
	`count(/descendant::w)`,
	`for $w in /descendant::w[overlapping::line] return string($w)`,
	`//w[@rend]`,
	`for $l in /descendant::line return count($l/xdescendant::w)`,
}

func main() {
	coll := mhxquery.NewCollection(mhxquery.CollectionOptions{Workers: 4})
	xml := corpus.BoethiusXML()
	names := make([]string, 0, len(xml))
	for name := range xml {
		names = append(names, name)
	}
	sort.Strings(names)
	// Four copies of the fixture so the fan-out pool has real work.
	for i := 0; i < 4; i++ {
		var hs []mhxquery.Hierarchy
		for _, name := range names {
			hs = append(hs, mhxquery.Hierarchy{Name: name, XML: xml[name]})
		}
		doc, err := mhxquery.Parse(hs...)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := coll.Put(fmt.Sprintf("boethius%d", i), doc); err != nil {
			log.Fatal(err)
		}
	}

	for r := 0; r < rounds; r++ {
		for _, q := range queries {
			if _, err := coll.QueryAll(q); err != nil {
				log.Fatalf("%s: %v", q, err)
			}
		}
	}

	snap := coll.Metrics().Snapshot()
	rate := func(cache string) float64 {
		hit := snap[`mhx_cache_requests_total{cache="`+cache+`",result="hit"}`]
		miss := snap[`mhx_cache_requests_total{cache="`+cache+`",result="miss"}`]
		if hit+miss == 0 {
			return 0
		}
		return hit / (hit + miss)
	}
	out := map[string]any{
		"plan_cache_hit_rate":    rate("plan"),
		"compile_cache_hit_rate": rate("compile"),
		"nameindex_builds":       snap["mhx_nameindex_builds_total"],
		"queries_evaluated":      snap["mhx_query_seconds_count"],
	}
	for k, v := range walProbe() {
		out[k] = v
	}
	for k, v := range morselProbe() {
		out[k] = v
	}
	if rss, ok := rssBytes(); ok {
		out["rss_bytes"] = rss
	}
	enc := json.NewEncoder(os.Stdout)
	if err := enc.Encode(out); err != nil {
		log.Fatal(err)
	}
}

// morselProbe drives a full-drain scan over a document big enough to
// cross the parallel-engagement threshold and reports the intra-query
// parallelism health numbers: morsels dispatched, queries that
// engaged, and the morsel latency p99, so a regression that silently
// stops engaging (or inflates morsel cost) is diffable in git.
func morselProbe() map[string]any {
	mhxquery.SetQueryWorkers(4)
	defer mhxquery.SetQueryWorkers(0)
	coll := mhxquery.NewCollection(mhxquery.CollectionOptions{Workers: 2})
	g := corpus.Generate(corpus.Params{Seed: 21, Words: 400, DamageRate: 0.12})
	names := make([]string, 0, len(g.XML))
	for name := range g.XML {
		names = append(names, name)
	}
	sort.Strings(names)
	hs := make([]mhxquery.Hierarchy, len(names))
	for i, name := range names {
		hs[i] = mhxquery.Hierarchy{Name: name, XML: g.XML[name]}
	}
	doc, err := mhxquery.Parse(hs...)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := coll.Put("generated", doc); err != nil {
		log.Fatal(err)
	}
	before := coll.Metrics().Snapshot()
	for r := 0; r < rounds; r++ {
		if _, err := coll.QueryAll(`//w[xancestor::dmg or xdescendant::dmg or overlapping::dmg]`); err != nil {
			log.Fatal(err)
		}
	}
	snap := coll.Metrics().Snapshot()
	p99, _ := coll.Metrics().Quantile("mhx_query_morsel_seconds", 0.99)
	// The morsel counters are process-wide; report only this burst.
	return map[string]any{
		"morsels_dispatched": snap["mhx_query_morsels_total"] - before["mhx_query_morsels_total"],
		"parallel_queries":   snap["mhx_query_parallel_queries_total"] - before["mhx_query_parallel_queries_total"],
		"morsel_p99_seconds": p99,
	}
}

// walProbe drives a concurrent durable-update burst through a
// throwaway on-disk collection and reports the write-ahead-log health
// numbers: group-commit fsync p99, commits amortized per fsync, and —
// after closing and reopening the collection — the recovery replay
// rate and torn-tail truncation count, so durability regressions
// (fsync latency creep, group commit falling apart, slow replay) are
// diffable in git alongside the cache numbers.
func walProbe() map[string]any {
	dir, err := os.MkdirTemp("", "metricsprobe")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	// Snapshots disabled so every update stays in the log and the
	// reopen below replays the whole burst.
	opts := mhxquery.CollectionOptions{
		FlushWindow:   500 * time.Microsecond,
		SnapshotEvery: -1,
		SnapshotBytes: -1,
	}
	coll, err := mhxquery.OpenCollection(dir, opts)
	if err != nil {
		log.Fatal(err)
	}
	xml := corpus.BoethiusXML()
	const writers = 4
	for i := 0; i < writers; i++ {
		var hs []mhxquery.Hierarchy
		for _, name := range corpus.BoethiusHierarchies() {
			hs = append(hs, mhxquery.Hierarchy{Name: name, XML: xml[name]})
		}
		doc, err := mhxquery.Parse(hs...)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := coll.Put(fmt.Sprintf("boethius%d", i), doc); err != nil {
			log.Fatal(err)
		}
	}
	// Concurrent writers give group commit batches to amortize.
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := fmt.Sprintf("boethius%d", i)
			for j := 0; j < 16; j++ {
				if _, _, err := coll.Update(name, `rename node (//w)[1] as "w"`); err != nil {
					log.Fatalf("%s: %v", name, err)
				}
			}
		}(i)
	}
	wg.Wait()

	snap := coll.Metrics().Snapshot()
	p99, _ := coll.Metrics().Quantile("mhx_wal_fsync_seconds", 0.99)
	commitsPerFsync := 0.0
	if snap["mhx_wal_syncs_total"] > 0 {
		commitsPerFsync = snap["mhx_wal_appends_total"] / snap["mhx_wal_syncs_total"]
	}
	if err := coll.Close(); err != nil {
		log.Fatal(err)
	}

	reopened, err := mhxquery.OpenCollection(dir, opts)
	if err != nil {
		log.Fatal(err)
	}
	defer reopened.Close()
	rec := reopened.Recovery()
	replayRate := 0.0
	if rec.Elapsed > 0 {
		replayRate = float64(rec.Replayed) / rec.Elapsed.Seconds()
	}
	return map[string]any{
		"wal_fsync_p99_seconds":      p99,
		"wal_commits_per_fsync":      commitsPerFsync,
		"wal_replay_records_per_sec": replayRate,
		"wal_replayed_records":       rec.Replayed,
		"wal_torn_tail_bytes":        rec.TornTailBytes,
	}
}

// rssBytes reads the process's resident set size from /proc (Linux
// only; ok=false elsewhere). Recorded next to the latency numbers so
// the memory cost of the query burst — and of the mmap'd snapshot
// serving path — is diffable in git.
func rssBytes() (int64, bool) {
	status, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0, false
	}
	for _, line := range strings.Split(string(status), "\n") {
		if !strings.HasPrefix(line, "VmRSS:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return 0, false
		}
		kb, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return 0, false
		}
		return kb * 1024, true
	}
	return 0, false
}
