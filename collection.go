package mhxquery

import (
	"context"
	"fmt"
	"io"
	"time"

	"mhxquery/internal/collection"
	"mhxquery/internal/obs"
	"mhxquery/internal/xquery"
)

// ErrDocNotFound is wrapped by errors that report a name with no
// registered document (test with errors.Is).
var ErrDocNotFound = collection.ErrNotFound

// ValidDocumentName reports whether name is acceptable to
// Collection.Put: [A-Za-z0-9._-], not starting with a dot or dash.
func ValidDocumentName(name string) bool { return collection.ValidName(name) }

// Collection is a named corpus of multihierarchical documents: a
// thread-safe registry with optional directory-backed persistence (the
// Save/ReadDocument binary format), an LRU cache of compiled queries,
// and parallel fan-out evaluation across member documents.
//
// Queries evaluated through a Collection may use doc("name") to reach a
// sibling document and collection()/collection("glob") to range over
// the whole corpus or a glob-selected subset of it.
type Collection struct {
	c *collection.Collection
}

// CollectionOptions configures a Collection. The zero value is valid:
// GOMAXPROCS fan-out workers, a 128-entry compiled-query cache, and
// (for persistent collections) the WAL-durable write path with default
// snapshot policy.
type CollectionOptions struct {
	// Workers bounds the QueryAll worker pool; 0 means GOMAXPROCS,
	// 1 evaluates sequentially.
	Workers int
	// CacheSize is the compiled-query LRU capacity in entries;
	// 0 means 128, negative disables caching.
	CacheSize int

	// WriteThrough reverts a persistent collection to the pre-WAL write
	// path (every update re-encodes the whole document image before
	// acknowledging). Durable but O(document) per commit.
	WriteThrough bool
	// FlushWindow bounds the extra latency the WAL group-commit writer
	// may add waiting for concurrent commits to share one fsync;
	// 0 fsyncs immediately (concurrent commits still batch).
	FlushWindow time.Duration
	// SnapshotEvery re-snapshots a document image after this many
	// logged updates (0 means 256, negative disables).
	SnapshotEvery int
	// SnapshotBytes re-snapshots after this many logged bytes per
	// document (0 means 4 MiB, negative disables).
	SnapshotBytes int64

	// NoMmap forces OpenCollection to read snapshot images into memory
	// instead of memory-mapping them. By default v3 images are mapped
	// where the platform supports it (see the README's storage-layout
	// section); set this — or MHX_NO_MMAP=1 — to opt out.
	NoMmap bool
}

// RecoveryStats reports what OpenCollection had to do to bring a
// durable collection back (zero for memory-only and write-through
// collections).
type RecoveryStats = collection.RecoveryStats

// NewCollection returns an empty in-memory collection.
func NewCollection(opts CollectionOptions) *Collection {
	return &Collection{c: collection.New(collection.Options{Workers: opts.Workers, CacheSize: opts.CacheSize})}
}

// OpenCollection returns a collection persisted under dir: the
// directory is created if needed, every document image (*.mhxg) in it
// is loaded, and — unless WriteThrough is set — the write-ahead log is
// replayed over the snapshots (crash recovery; see Recovery for what
// that took). Subsequent updates commit through the log with group-
// committed fsyncs and background snapshotting.
func OpenCollection(dir string, opts CollectionOptions) (*Collection, error) {
	c, err := collection.Open(dir, collection.Options{
		Workers:       opts.Workers,
		CacheSize:     opts.CacheSize,
		WriteThrough:  opts.WriteThrough,
		FlushWindow:   opts.FlushWindow,
		SnapshotEvery: opts.SnapshotEvery,
		SnapshotBytes: opts.SnapshotBytes,
		NoMmap:        opts.NoMmap,
	})
	if err != nil {
		return nil, err
	}
	return &Collection{c: c}, nil
}

// Recovery returns what OpenCollection replayed from the write-ahead
// log: snapshots loaded, records re-applied or skipped, tombstones,
// torn-tail bytes tolerated, and the wall time recovery took.
func (c *Collection) Recovery() RecoveryStats { return c.c.Recovery() }

// Put registers doc under name, replacing any previous document of
// that name and writing through to the backing directory if there is
// one. It reports whether an existing document was replaced. Names are
// restricted per ValidDocumentName.
func (c *Collection) Put(name string, doc *Document) (replaced bool, err error) {
	if doc == nil {
		return false, fmt.Errorf("mhxquery: nil document")
	}
	return c.c.Put(name, doc.g)
}

// Get returns the document registered under name.
func (c *Collection) Get(name string) (*Document, bool) {
	d, ok := c.c.Get(name)
	if !ok {
		return nil, false
	}
	return &Document{g: d}, true
}

// Delete removes the named document (and its persisted image, if any).
func (c *Collection) Delete(name string) error { return c.c.Delete(name) }

// Update applies an update expression (see Document.Update) to the
// named document and publishes the new version in the registry,
// writing through to the backing directory. Readers holding the old
// version — including in-flight streams — keep their snapshot; new
// Get/Query calls observe the new version. Updates serialize against
// each other; reads are never blocked.
func (c *Collection) Update(name, src string) (*Document, UpdateStats, error) {
	return c.UpdateContext(context.Background(), name, src)
}

// UpdateContext is Update under a cancellation context.
func (c *Collection) UpdateContext(ctx context.Context, name, src string) (*Document, UpdateStats, error) {
	nd, rep, err := c.c.UpdateContext(ctx, name, src)
	if err != nil {
		return nil, UpdateStats{}, err
	}
	return &Document{g: nd}, updateStatsFrom(rep), nil
}

// Names returns the member document names in sorted order.
func (c *Collection) Names() []string { return c.c.Names() }

// Len returns the number of member documents.
func (c *Collection) Len() int { return c.c.Len() }

// Query evaluates src against the named member document. Unlike
// Document.Query, doc() and collection() are live inside src, resolved
// against this collection.
func (c *Collection) Query(name, src string) (Sequence, error) {
	return c.QueryContext(context.Background(), name, src)
}

// QueryContext is Query under a cancellation context: when ctx expires
// the evaluation stops within a bounded number of items.
func (c *Collection) QueryContext(ctx context.Context, name, src string) (Sequence, error) {
	seq, d, err := c.c.QueryDocContext(ctx, name, src)
	if err != nil {
		return Sequence{}, err
	}
	return Sequence{s: seq, d: d}, nil
}

// Explain is Query with per-operator instrumentation: it returns the
// result together with the physical operator tree of the evaluation
// (index-vs-scan decisions and observed cardinalities). The underlying
// plan is cached keyed by query source + document hierarchy signature.
func (c *Collection) Explain(name, src string) (Sequence, *PlanOp, error) {
	seq, tree, d, err := c.c.ExplainDoc(name, src)
	if err != nil {
		return Sequence{}, nil, err
	}
	return Sequence{s: seq, d: d}, planOpFrom(tree), nil
}

// ExplainAnalyze is Explain upgraded to EXPLAIN ANALYZE: the query runs
// with wall-time instrumentation and each operator of the returned tree
// carries its observed time (PlanOp.Nanos, inclusive of children); the
// root's Nanos is the total query wall time.
func (c *Collection) ExplainAnalyze(ctx context.Context, name, src string) (Sequence, *PlanOp, error) {
	seq, tree, d, err := c.c.ExplainAnalyzeDoc(ctx, name, src)
	if err != nil {
		return Sequence{}, nil, err
	}
	return Sequence{s: seq, d: d}, planOpFrom(tree), nil
}

// Metrics is a read-only view of a collection's observability registry:
// query/update latency histograms, cache hit/miss counters, fan-out
// gauges and name-index build counters. See the README's Observability
// section for the metric catalog.
type Metrics struct {
	r *obs.Registry
}

// WritePrometheus encodes every metric in the Prometheus text
// exposition format (version 0.0.4).
func (m Metrics) WritePrometheus(w io.Writer) error { return m.r.WritePrometheus(w) }

// Snapshot flattens every scalar metric into a map keyed by
// "name{labels}"; histograms contribute "_count" and "_sum" entries.
func (m Metrics) Snapshot() map[string]float64 { return m.r.Snapshot() }

// Quantile estimates the q-quantile of the unlabeled histogram metric
// registered under name (e.g. "mhx_wal_fsync_seconds") by bucket
// interpolation. The bool is false when no such histogram exists or
// nothing has been observed.
func (m Metrics) Quantile(name string, q float64) (float64, bool) { return m.r.Quantile(name, q) }

// Metrics returns the collection's metrics.
func (c *Collection) Metrics() Metrics { return Metrics{r: c.c.Metrics()} }

// CollectionResult is the outcome of one document's evaluation in a
// QueryAll fan-out.
type CollectionResult struct {
	// Name is the document's registry name.
	Name string
	// Result is the query result; zero when Err is set.
	Result Sequence
	// Err is the per-document evaluation error, if any; one document
	// failing does not abort the others.
	Err error
}

// QueryAll evaluates src against every member document in parallel
// (bounded by CollectionOptions.Workers) and returns per-document
// results in name order. The compiled form of src is cached and reused
// across calls.
func (c *Collection) QueryAll(src string) ([]CollectionResult, error) {
	return c.QueryMatching("", src)
}

// QueryMatching is QueryAll restricted to documents whose names match
// the glob pattern (path.Match syntax).
func (c *Collection) QueryMatching(pattern, src string) ([]CollectionResult, error) {
	return c.QueryMatchingLimit(context.Background(), pattern, src, 0)
}

// QueryMatchingLimit is QueryMatching under a cancellation context and
// a global result budget: limit > 0 bounds the total number of items
// across the fan-out in document name order, and each document's
// evaluation stops as soon as the budget cannot use more of its items.
// Rows past the budget keep an empty result.
func (c *Collection) QueryMatchingLimit(ctx context.Context, pattern, src string, limit int) ([]CollectionResult, error) {
	results, err := c.c.QueryAllLimit(ctx, src, pattern, limit)
	if err != nil {
		return nil, err
	}
	out := make([]CollectionResult, len(results))
	for i, r := range results {
		out[i] = CollectionResult{Name: r.Name, Err: r.Err}
		if r.Err == nil {
			out[i].Result = Sequence{s: r.Seq, d: r.Doc}
		}
	}
	return out, nil
}

// StreamDoc starts a lazy evaluation of src against the named member
// document: items are produced on demand, so a limit (or an abandoned
// stream) stops document evaluation early. doc()/collection() inside
// src resolve against this collection's registry epoch at the start.
func (c *Collection) StreamDoc(ctx context.Context, name, src string) (*Stream, error) {
	s, d, err := c.c.StreamDoc(ctx, name, src)
	if err != nil {
		return nil, err
	}
	return &Stream{s: s, d: d}, nil
}

// CollectionRow is one event of a collection-wide stream: one result
// item of one document, or a per-document evaluation error (which does
// not abort the remaining documents).
type CollectionRow struct {
	// Doc is the document's registry name.
	Doc string
	// Item is the result item as a one-item Sequence; zero when Err is
	// set.
	Item Sequence
	// Err is the document's evaluation error, if any.
	Err error
}

// CollectionStream streams one query across member documents in name
// order with bounded memory: at most one document evaluates at a time,
// nothing is materialized beyond the item in flight, and abandoning the
// stream stops all remaining work.
type CollectionStream struct {
	rows *collection.Rows
}

// StreamMatching starts a collection-wide lazy evaluation over the
// documents whose names match pattern ("" = all), in name order.
func (c *Collection) StreamMatching(ctx context.Context, pattern, src string) (*CollectionStream, error) {
	rows, err := c.c.StreamAll(ctx, src, pattern)
	if err != nil {
		return nil, err
	}
	return &CollectionStream{rows: rows}, nil
}

// Next returns the next row, or ok=false when every document is
// exhausted.
func (s *CollectionStream) Next() (CollectionRow, bool) {
	ev, ok := s.rows.Next()
	if !ok {
		return CollectionRow{}, false
	}
	row := CollectionRow{Doc: ev.Name, Err: ev.Err}
	if ev.Err == nil {
		row.Item = Sequence{s: xquery.Seq{ev.Item}, d: ev.Doc}
	}
	return row, true
}

// CollectionCacheStats reports compiled-query cache effectiveness.
type CollectionCacheStats struct {
	Hits, Misses uint64
	Entries      int
	Capacity     int
}

// CacheStats returns a snapshot of the compiled-query cache counters.
func (c *Collection) CacheStats() CollectionCacheStats {
	s := c.c.CacheStats()
	return CollectionCacheStats{Hits: s.Hits, Misses: s.Misses, Entries: s.Entries, Capacity: s.Capacity}
}

// PlanCacheStats returns a snapshot of the physical-plan cache, whose
// entries are keyed by query source + document hierarchy signature.
func (c *Collection) PlanCacheStats() CollectionCacheStats {
	s := c.c.PlanCacheStats()
	return CollectionCacheStats{Hits: s.Hits, Misses: s.Misses, Entries: s.Entries, Capacity: s.Capacity}
}

// Close marks the collection closed: pending queries finish, further
// Put calls fail. Nothing is buffered (Put writes through), so Close
// never loses data.
func (c *Collection) Close() error { return c.c.Close() }
