package mhxquery_test

import (
	"bytes"
	"strings"
	"testing"

	"mhxquery"
	"mhxquery/internal/corpus"
)

func boethius(t *testing.T) *mhxquery.Document {
	t.Helper()
	xml := corpus.BoethiusXML()
	var hs []mhxquery.Hierarchy
	for _, name := range corpus.BoethiusHierarchies() {
		hs = append(hs, mhxquery.Hierarchy{Name: name, XML: xml[name]})
	}
	d, err := mhxquery.Parse(hs...)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestParseAndBasics(t *testing.T) {
	d := boethius(t)
	if d.Text() != corpus.BoethiusText {
		t.Errorf("Text = %q", d.Text())
	}
	if got := d.Hierarchies(); len(got) != 4 || got[0] != "physical" {
		t.Errorf("Hierarchies = %v", got)
	}
	s := d.Stats()
	if s.Leaves != 16 || s.Elements != 16 || s.Hierarchies != 4 {
		t.Errorf("Stats = %+v", s)
	}
	if len(d.Leaves()) != 16 {
		t.Error("Leaves()")
	}
	l := d.Leaves()[3]
	if l.Kind() != "leaf" || l.Text() != "w" {
		t.Errorf("leaf 3 = %s %q", l.Kind(), l.Text())
	}
	if s, e := l.Span(); s != 14 || e != 15 {
		t.Errorf("leaf 3 span = [%d,%d)", s, e)
	}
}

func TestParseErrorsPublic(t *testing.T) {
	if _, err := mhxquery.Parse(); err == nil {
		t.Error("no hierarchies accepted")
	}
	if _, err := mhxquery.Parse(mhxquery.Hierarchy{Name: "a", XML: "<broken"}); err == nil {
		t.Error("bad XML accepted")
	}
	_, err := mhxquery.Parse(
		mhxquery.Hierarchy{Name: "a", XML: "<r>xy</r>"},
		mhxquery.Hierarchy{Name: "b", XML: "<r>xz</r>"},
	)
	if err == nil || !strings.Contains(err.Error(), "diverge") {
		t.Errorf("alignment error = %v", err)
	}
}

func TestQueryPublic(t *testing.T) {
	d := boethius(t)
	out, err := d.QueryString(`for $l in /descendant::line[overlapping::w[string(.) = 'singallice']]
return string($l)`)
	if err != nil {
		t.Fatal(err)
	}
	if out != "gesceaftum unawendendne sin gallice sibbe gecynde þa" {
		t.Errorf("query = %q", out)
	}
}

func TestCompiledQueryReuse(t *testing.T) {
	q := mhxquery.MustCompile(`count(/descendant::w)`)
	if q.Source() == "" {
		t.Error("Source empty")
	}
	d := boethius(t)
	for i := 0; i < 3; i++ {
		res, err := q.Eval(d)
		if err != nil {
			t.Fatal(err)
		}
		if res.String() != "6" {
			t.Errorf("eval %d = %q", i, res.String())
		}
	}
}

func TestSequenceAccessors(t *testing.T) {
	d := boethius(t)
	res, err := d.Query(`(/descendant::dmg[1], "atom", 2)`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 3 {
		t.Fatalf("Len = %d", res.Len())
	}
	v0 := res.Item(0)
	if !v0.IsNode() || v0.Node().Name() != "dmg" || v0.Node().Hierarchy() != "damage" {
		t.Errorf("item 0 = %+v", v0)
	}
	if v0.Node().XML() != "<dmg>w</dmg>" {
		t.Errorf("item 0 XML = %s", v0.Node().XML())
	}
	if _, ok := v0.Node().Attr("none"); ok {
		t.Error("ghost attribute")
	}
	v1 := res.Item(1)
	if v1.IsNode() || v1.Text() != "atom" {
		t.Errorf("item 1 = %+v", v1)
	}
	if got := res.Strings(); got[2] != "2" {
		t.Errorf("Strings = %v", got)
	}
	// Spaces separate adjacent atomic items only, not node/atomic pairs.
	if res.Text() != "watom 2" {
		t.Errorf("Text = %q", res.Text())
	}
}

func TestCompileErrorPublic(t *testing.T) {
	if _, err := mhxquery.Compile(`for $x in`); err == nil {
		t.Error("bad query accepted")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustCompile should panic")
		}
	}()
	mhxquery.MustCompile(`(((`)
}

func TestExportsAndSerialization(t *testing.T) {
	d := boethius(t)
	if !strings.Contains(d.DOT(), "digraph") {
		t.Error("DOT")
	}
	if !strings.Contains(d.LeafTable(), "gesceaftum") {
		t.Error("LeafTable")
	}
	xml, err := d.SerializeHierarchy("damage")
	if err != nil || xml != corpus.BoethiusDamage {
		t.Errorf("SerializeHierarchy = %q, %v", xml, err)
	}
	if _, err := d.SerializeHierarchy("nope"); err == nil {
		t.Error("unknown hierarchy serialized")
	}
}

func TestReadmeQuickstart(t *testing.T) {
	// The exact snippet from the package documentation must work.
	doc, err := mhxquery.Parse(
		mhxquery.Hierarchy{Name: "pages", XML: `<r><page>Hello wo</page><page>rld</page></r>`},
		mhxquery.Hierarchy{Name: "words", XML: `<r><w>Hello</w> <w>world</w></r>`},
	)
	if err != nil {
		t.Fatal(err)
	}
	out, err := doc.QueryString(`for $w in /descendant::w[overlapping::page] return string($w)`)
	if err != nil {
		t.Fatal(err)
	}
	// "world" starts on page 1 and ends on page 2: it overlaps a page
	// boundary, which no single-hierarchy XPath can express.
	if out != "world" {
		t.Errorf("quickstart = %q", out)
	}
}

func TestParseWithDTDValidation(t *testing.T) {
	const structDTD = `
<!ELEMENT r (#PCDATA | vline)*>
<!ELEMENT vline (#PCDATA | w)*>
<!ELEMENT w (#PCDATA)>`
	// The Boethius structure encoding validates against its DTD.
	_, err := mhxquery.Parse(
		mhxquery.Hierarchy{Name: "structure", XML: corpus.BoethiusStructure, DTD: structDTD},
	)
	if err != nil {
		t.Fatalf("valid document rejected: %v", err)
	}
	// A document violating the DTD is rejected at Parse time.
	_, err = mhxquery.Parse(
		mhxquery.Hierarchy{Name: "structure", XML: `<r><w><vline>x</vline></w></r>`, DTD: structDTD},
	)
	if err == nil || !strings.Contains(err.Error(), "invalid") {
		t.Errorf("invalid document accepted: %v", err)
	}
	// A broken DTD is rejected too.
	_, err = mhxquery.Parse(
		mhxquery.Hierarchy{Name: "structure", XML: `<r>x</r>`, DTD: `<!ELEMENT`},
	)
	if err == nil {
		t.Error("broken DTD accepted")
	}
}

func TestBinaryRoundTripPublic(t *testing.T) {
	d := boethius(t)
	var buf bytes.Buffer
	if err := d.Save(&buf); err != nil {
		t.Fatal(err)
	}
	d2, err := mhxquery.ReadDocument(&buf)
	if err != nil {
		t.Fatal(err)
	}
	out, err := d2.QueryString(`for $w in /descendant::w[overlapping::line] return string($w)`)
	if err != nil {
		t.Fatal(err)
	}
	if out != "singallice" {
		t.Errorf("query over loaded document = %q", out)
	}
	if _, err := mhxquery.ReadDocument(bytes.NewReader([]byte("garbage"))); err == nil {
		t.Error("garbage image accepted")
	}
}

func TestSelect(t *testing.T) {
	d := boethius(t)
	words, err := d.Select(`/descendant::w`)
	if err != nil {
		t.Fatal(err)
	}
	if len(words) != 6 || words[0].Text() != "gesceaftum" || words[0].Hierarchy() != "structure" {
		t.Errorf("Select words = %d, first %q", len(words), words[0].Text())
	}
	// Extended axis straight from the path API.
	split, err := d.Select(`/descendant::w[overlapping::line]`)
	if err != nil {
		t.Fatal(err)
	}
	if len(split) != 1 || split[0].Text() != "singallice" {
		t.Errorf("Select split = %v", split)
	}
	// Hierarchy-qualified leaf test: leaves covered by <dmg> text.
	dmgLeaves, err := d.Select(`/descendant::dmg/descendant::leaf()`)
	if err != nil {
		t.Fatal(err)
	}
	if len(dmgLeaves) != 4 { // w | de | space | þa
		t.Errorf("damage leaves = %d", len(dmgLeaves))
	}
	if _, err := d.Select(`1 + 1`); err == nil {
		t.Error("non-node Select accepted")
	}
	if _, err := d.Select(`/descendant::`); err == nil {
		t.Error("bad path accepted")
	}
}

func TestExplainPublicAPI(t *testing.T) {
	d, err := mhxquery.Parse(
		mhxquery.Hierarchy{Name: "pages", XML: `<r><page>Hello wo</page><page>rld</page></r>`},
		mhxquery.Hierarchy{Name: "words", XML: `<r><w>Hello</w> <w>world</w></r>`},
	)
	if err != nil {
		t.Fatal(err)
	}
	res, plan, err := d.Explain(`/descendant::w`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 2 || plan == nil || plan.Op != "query" {
		t.Fatalf("Explain: len=%d plan=%+v", res.Len(), plan)
	}
	var scan *mhxquery.PlanOp
	var walk func(op *mhxquery.PlanOp)
	walk = func(op *mhxquery.PlanOp) {
		if op.Op == "index-scan" {
			scan = op
		}
		for _, k := range op.Children {
			walk(k)
		}
	}
	walk(plan)
	if scan == nil || !scan.Index || scan.OutRows != 2 || scan.Calls != 1 {
		t.Fatalf("index-scan op = %+v", scan)
	}

	// The collection-level Explain reaches the same machinery.
	c := mhxquery.NewCollection(mhxquery.CollectionOptions{})
	if _, err := c.Put("hello", d); err != nil {
		t.Fatal(err)
	}
	res, plan, err = c.Explain("hello", `count(/descendant::page)`)
	if err != nil {
		t.Fatal(err)
	}
	if res.String() != "2" || plan == nil {
		t.Fatalf("collection Explain: res=%q plan=%v", res.String(), plan)
	}
	if st := c.PlanCacheStats(); st.Misses == 0 {
		t.Fatalf("plan cache untouched: %+v", st)
	}
}

func TestDocumentUpdatePublic(t *testing.T) {
	d, err := mhxquery.Parse(
		mhxquery.Hierarchy{Name: "pages", XML: `<r><page>Hello wo</page><page>rld</page></r>`},
		mhxquery.Hierarchy{Name: "words", XML: `<r><w>Hello</w> <w>world</w></r>`},
	)
	if err != nil {
		t.Fatal(err)
	}
	if d.Version() != 0 {
		t.Fatalf("fresh Version = %d", d.Version())
	}

	// Wrap the split word, rename it, and persist an analyze-string
	// overlay — one batch, one new version.
	nd, stats, err := d.Update(`
		insert node mark into (//w)[2],
		insert hierarchy "ells" from analyze-string(/, "ll")/child::m`)
	if err != nil {
		t.Fatal(err)
	}
	if nd.Version() != 1 || stats.Ops != 2 || stats.HierarchiesAdded != 1 {
		t.Fatalf("version=%d stats=%+v", nd.Version(), stats)
	}
	out, err := nd.QueryString(`string(//mark)`)
	if err != nil || out != "world" {
		t.Fatalf("mark = %q, %v", out, err)
	}
	out, err = nd.QueryString(`count(//m[overlapping::page or xancestor::page])`)
	if err != nil || out != "1" {
		t.Fatalf("persisted overlay vs pages = %q, %v", out, err)
	}
	// The old version is untouched.
	if out, err := d.QueryString(`count(//mark)`); err != nil || out != "0" {
		t.Fatalf("old version sees the mark: %q, %v", out, err)
	}
	// Errors keep codes and never produce a half-applied version.
	if _, _, err := nd.Update(`rename node //mark as "page"`); err == nil {
		t.Fatal("cross-hierarchy rename must fail")
	}
	if out, _ := nd.QueryString(`count(//mark)`); out != "1" {
		t.Fatalf("failed update mutated the document: %s", out)
	}
}
