module mhxquery

go 1.22
