package mhxquery_test

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"mhxquery"
)

// reopen round-trips d through the v3 snapshot image, returning a
// slab-backed document that materializes its hierarchies lazily.
func reopen(t *testing.T, d *mhxquery.Document) *mhxquery.Document {
	t.Helper()
	var buf bytes.Buffer
	if err := d.Save(&buf); err != nil {
		t.Fatal(err)
	}
	d2, err := mhxquery.ReadDocument(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return d2
}

// outcome runs a query and flattens the result and error into one
// comparable string, so error cases must match code-for-code too.
func outcome(d *mhxquery.Document, src string) string {
	out, err := d.QueryString(src)
	if err != nil {
		return "error: " + err.Error()
	}
	return "ok: " + out
}

var differentialQueries = []string{
	`count(//w)`,
	`string((//w)[1])`,
	`for $w in /descendant::w[overlapping::line] return string($w)`,
	`for $l in /descendant::line return count($l/overlapping::w)`,
	`count(//w[xancestor::page])`,
	`for $w in /descendant::w return span-end($w) - span-start($w)`,
	`count(analyze-string(/, "ss")/child::m)`,
	// Hierarchy-dependent: errors on documents without the hierarchy;
	// the slab-backed document must fail with the identical error.
	`sum(for $r in /descendant::res('restoration') return span-end($r) - span-start($r))`,
	`count(/descendant::res('no-such-hierarchy'))`,
}

// TestDifferentialSlabVsHeap: a slab-backed document answers every
// query — including error cases — exactly like the in-memory document
// it was snapshotted from, and Select and Update behave identically.
func TestDifferentialSlabVsHeap(t *testing.T) {
	docs := map[string]*mhxquery.Document{"boethius": boethius(t)}
	for _, seed := range []uint64{5, 23} {
		d, _ := generated(t, seed, 50)
		docs[fmt.Sprintf("gen%d", seed)] = d
	}
	for name, d := range docs {
		d2 := reopen(t, d)
		for _, q := range differentialQueries {
			if got, want := outcome(d2, q), outcome(d, q); got != want {
				t.Errorf("%s: %s\n slab %s\n heap %s", name, q, got, want)
			}
		}
		gotSel, gotErr := d2.Select(`/descendant::w[overlapping::line]`)
		wantSel, wantErr := d.Select(`/descendant::w[overlapping::line]`)
		if (gotErr == nil) != (wantErr == nil) || len(gotSel) != len(wantSel) {
			t.Fatalf("%s: Select diverged: %d/%v vs %d/%v", name, len(gotSel), gotErr, len(wantSel), wantErr)
		}
		for i := range gotSel {
			gs, ge := gotSel[i].Span()
			ws, we := wantSel[i].Span()
			if gs != ws || ge != we || gotSel[i].Text() != wantSel[i].Text() {
				t.Fatalf("%s: Select node %d diverged", name, i)
			}
		}
	}
}

// TestDifferentialUpdate: the same update applied to the slab-backed
// and heap documents yields the same stats, the same answers, and the
// same failures.
func TestDifferentialUpdate(t *testing.T) {
	d, _ := generated(t, 17, 40)
	d2 := reopen(t, d)
	const upd = `insert node mark into (/descendant::w)[3],
		insert hierarchy "a-overlay" from analyze-string(/, "a")/child::m`
	nd, stats, err := d.Update(upd)
	nd2, stats2, err2 := d2.Update(upd)
	if (err == nil) != (err2 == nil) {
		t.Fatalf("update errors diverged: %v vs %v", err, err2)
	}
	if err != nil {
		t.Fatalf("update failed on both documents: %v", err)
	}
	if stats != stats2 {
		t.Fatalf("update stats diverged: %+v vs %+v", stats, stats2)
	}
	for _, q := range []string{
		`string(//mark)`,
		`count(//m[overlapping::page or xancestor::page])`,
		`count(/descendant::res('a-overlay'))`,
	} {
		if got, want := outcome(nd2, q), outcome(nd, q); got != want {
			t.Errorf("after update: %s\n slab %s\n heap %s", q, got, want)
		}
	}
	// A failing update fails identically and mutates neither document.
	const bad = `rename node (//w)[1] as "line"`
	_, _, errA := nd.Update(bad)
	_, _, errB := nd2.Update(bad)
	if errA == nil || errB == nil || errA.Error() != errB.Error() {
		t.Fatalf("failing update diverged: %v vs %v", errA, errB)
	}
}

// TestConcurrentQueriesOnFreshSlab hammers a freshly opened (fully
// lazy) slab document from many goroutines at once, so the first
// materialization of every hierarchy races with concurrent readers.
// Run under -race this checks the sync.Once fill protocol.
func TestConcurrentQueriesOnFreshSlab(t *testing.T) {
	d := boethius(t)
	want := make(map[string]string, len(differentialQueries))
	for _, q := range differentialQueries {
		want[q] = outcome(d, q)
	}
	d2 := reopen(t, d)
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < len(differentialQueries); i++ {
				q := differentialQueries[(g+i)%len(differentialQueries)]
				if got := outcome(d2, q); got != want[q] {
					errs <- fmt.Errorf("goroutine %d: %s\n got %s\nwant %s", g, q, got, want[q])
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
