// Package mhxquery is a Go implementation of "Multihierarchical XQuery
// for Document-Centric XML" (Iacob & Dekhtyar, SIGMOD 2006).
//
// It manages documents annotated with several concurrent — possibly
// overlapping — markup hierarchies over the same base text, stores them
// in a KyGODDAG (the paper's generalization of the DOM tree), and
// queries them with an extended XQuery whose path language adds the
// multihierarchical axes xancestor, xdescendant, xfollowing, xpreceding,
// preceding-overlapping, following-overlapping and overlapping, the
// hierarchy-qualified node tests text(H), node(H), *(H) and leaf(), and
// the analyze-string function that materializes regular-expression
// matches as a temporary markup hierarchy.
//
// Quick start:
//
//	doc, err := mhxquery.Parse(
//	    mhxquery.Hierarchy{Name: "pages", XML: `<r><page>Hello wo</page><page>rld</page></r>`},
//	    mhxquery.Hierarchy{Name: "words", XML: `<r><w>Hello</w> <w>world</w></r>`},
//	)
//	// Which words are split across a page boundary?
//	out, err := doc.QueryString(`for $w in /descendant::w[overlapping::page] return string($w)`)
package mhxquery

import (
	"context"
	"errors"
	"fmt"
	"io"

	"mhxquery/internal/cmh"
	"mhxquery/internal/core"
	"mhxquery/internal/dom"
	"mhxquery/internal/store"
	"mhxquery/internal/xmlparse"
	"mhxquery/internal/xquery"
)

// Hierarchy names one markup hierarchy and its XML encoding. All
// hierarchies of a document must share the same root element name,
// encode exactly the same text content, and use pairwise-disjoint
// element vocabularies (the CMH conditions of the paper's Section 3).
type Hierarchy struct {
	Name string
	XML  string
	// DTD, when non-empty, holds <!ELEMENT>/<!ATTLIST> declarations the
	// encoding must be valid against (content models are checked with
	// Brzozowski derivatives; see internal/cmh).
	DTD string
}

// Document is a parsed multihierarchical document, stored as a KyGODDAG.
// A Document is immutable and safe for concurrent use; Update produces
// a NEW version (copy-on-write) and leaves the receiver untouched, so
// readers holding older versions — including in-flight Streams — keep
// evaluating against their snapshot.
type Document struct {
	g *core.Document
}

// Parse parses each hierarchy encoding and builds the KyGODDAG.
func Parse(hierarchies ...Hierarchy) (*Document, error) {
	if len(hierarchies) == 0 {
		return nil, fmt.Errorf("mhxquery: no hierarchies given")
	}
	trees := make([]core.NamedTree, len(hierarchies))
	for i, h := range hierarchies {
		root, err := xmlparse.Parse(h.XML, xmlparse.Options{})
		if err != nil {
			return nil, fmt.Errorf("mhxquery: hierarchy %q: %w", h.Name, err)
		}
		if h.DTD != "" {
			dtd, err := cmh.ParseDTD(h.DTD)
			if err != nil {
				return nil, fmt.Errorf("mhxquery: hierarchy %q: %w", h.Name, err)
			}
			if errs := dtd.Validate(root); len(errs) > 0 {
				return nil, fmt.Errorf("mhxquery: hierarchy %q is invalid: %w (and %d more)",
					h.Name, errs[0], len(errs)-1)
			}
		}
		trees[i] = core.NamedTree{Name: h.Name, Root: root}
	}
	g, err := core.Build(trees)
	if err != nil {
		return nil, err
	}
	return &Document{g: g}, nil
}

// Text returns the base text S shared by all hierarchies.
func (d *Document) Text() string { return d.g.Text }

// Hierarchies returns the hierarchy names in document order.
func (d *Document) Hierarchies() []string { return d.g.HierarchyNames() }

// Stats summarizes the KyGODDAG's composition.
type Stats struct {
	Hierarchies int
	Elements    int
	Texts       int
	Leaves      int
	LeafEdges   int
	TreeEdges   int
}

// Stats computes composition statistics (hierarchies, element/text/leaf
// node counts, edge counts).
func (d *Document) Stats() Stats {
	s := d.g.Stats()
	return Stats{
		Hierarchies: s.Hierarchies,
		Elements:    s.Elements,
		Texts:       s.Texts,
		Leaves:      s.Leaves,
		LeafEdges:   s.LeafEdges,
		TreeEdges:   s.TreeEdges,
	}
}

// DOT renders the KyGODDAG as a Graphviz digraph (the paper's Figure 2).
func (d *Document) DOT() string { return d.g.DOT() }

// LeafTable renders the leaf partition as a text table.
func (d *Document) LeafTable() string { return d.g.LeafTable() }

// SerializeHierarchy re-serializes one hierarchy back to XML.
func (d *Document) SerializeHierarchy(name string) (string, error) {
	return d.g.Serialize(name)
}

// Save writes a compact binary image of the document (base text stored
// once, markup structure with interned names). Read it back with
// ReadDocument.
func (d *Document) Save(w io.Writer) error { return store.Encode(w, d.g) }

// ReadDocument loads a document from a binary image produced by Save.
// The document is revalidated and fully re-indexed.
func ReadDocument(r io.Reader) (*Document, error) {
	g, err := store.Decode(r)
	if err != nil {
		return nil, err
	}
	return &Document{g: g}, nil
}

// Leaves returns the leaf layer in text order.
func (d *Document) Leaves() []Node {
	d.g.Materialize()
	out := make([]Node, len(d.g.Leaves))
	for i, l := range d.g.Leaves {
		out[i] = Node{n: l, d: d.g}
	}
	return out
}

// Version returns the document's update revision: 0 for a freshly
// parsed (or loaded) document, incremented by every Update.
func (d *Document) Version() uint64 { return d.g.Rev }

// UpdateStats reports what one Update did: how many primitives and
// resolved edits were applied, and the copy-on-write accounting of the
// underlying engine (what was shared versus copied, whether name
// indexes were patched incrementally or left to rebuild).
type UpdateStats struct {
	// Ops is the number of update primitives in the expression; Edits
	// the number of node-level edits they resolved to.
	Ops, Edits int
	// HierarchiesShared / HierarchiesCopied / NodesCopied expose the
	// copy-on-write granularity: untouched hierarchies are shared with
	// the previous version wholesale.
	HierarchiesShared, HierarchiesCopied, NodesCopied int
	// HierarchiesAdded / HierarchiesRemoved count layer-level changes.
	HierarchiesAdded, HierarchiesRemoved int
	// IndexesPatched counts structural name indexes maintained
	// incrementally from the previous version; IndexesLazy those left
	// to the lazy from-scratch build.
	IndexesPatched, IndexesLazy int
	// SynopsesPatched / SynopsesLazy are the same accounting for the
	// path synopses the cost-based planner estimates from.
	SynopsesPatched, SynopsesLazy int
	// BoundsRecomputed reports whether the leaf partition's boundary
	// array needed full recomputation (boundary-retiring edits) rather
	// than an incremental merge.
	BoundsRecomputed bool
}

func updateStatsFrom(rep *xquery.UpdateReport) UpdateStats {
	return UpdateStats{
		Ops:                rep.Ops,
		Edits:              rep.Edits,
		HierarchiesShared:  rep.Stats.HierarchiesShared,
		HierarchiesCopied:  rep.Stats.HierarchiesCopied,
		NodesCopied:        rep.Stats.NodesCopied,
		HierarchiesAdded:   rep.Stats.HierarchiesAdded,
		HierarchiesRemoved: rep.Stats.HierarchiesRemoved,
		IndexesPatched:     rep.Stats.IndexesPatched,
		IndexesLazy:        rep.Stats.IndexesLazy,
		SynopsesPatched:    rep.Stats.SynopsesPatched,
		SynopsesLazy:       rep.Stats.SynopsesLazy,
		BoundsRecomputed:   rep.Stats.BoundsRecomputed,
	}
}

// Update applies an update expression to the document and returns the
// resulting NEW version; the receiver is never mutated. The language is
// a small XQuery-Update-style surface whose targets are full extended
// XQuery expressions:
//
//	insert node NAME into|before|after TARGET
//	delete node TARGET
//	rename node TARGET as EXPR
//	replace value of node TARGET with EXPR
//	insert hierarchy "NAME" from EXPR
//	delete hierarchy "NAME"
//
// "insert node … into" wraps the target's children in the new element
// (base text is immutable structure, so inserts never add text);
// "before"/"after" insert an empty element at the target's edge;
// "insert hierarchy … from" persists span-carrying nodes — typically
// analyze-string matches — as a durable named hierarchy. All targets
// are evaluated against the pre-update version and the batch applies
// atomically. Comma-separated primitives form one batch.
func (d *Document) Update(src string) (*Document, UpdateStats, error) {
	return d.UpdateContext(context.Background(), src)
}

// UpdateContext is Update under a cancellation context (bounding the
// evaluation of target expressions).
func (d *Document) UpdateContext(ctx context.Context, src string) (*Document, UpdateStats, error) {
	u, err := xquery.CompileUpdate(src)
	if err != nil {
		return nil, UpdateStats{}, err
	}
	nd, rep, err := u.ApplyContext(ctx, d.g, nil)
	if err != nil {
		return nil, UpdateStats{}, err
	}
	return &Document{g: nd}, updateStatsFrom(rep), nil
}

// Select evaluates a path expression (the paper's extended path language
// of Definitions 1–2, a strict subset of the query language) and returns
// the selected nodes in the Definition 3 document order. It errors if
// the expression yields non-node items.
func (d *Document) Select(path string) ([]Node, error) {
	res, err := d.Query(path)
	if err != nil {
		return nil, err
	}
	out := make([]Node, res.Len())
	for i := 0; i < res.Len(); i++ {
		v := res.Item(i)
		if !v.IsNode() {
			return nil, fmt.Errorf("mhxquery: Select: item %d is not a node", i+1)
		}
		out[i] = *v.Node()
	}
	return out, nil
}

// Query compiles and evaluates an extended-XQuery expression against the
// document.
func (d *Document) Query(src string) (Sequence, error) {
	q, err := Compile(src)
	if err != nil {
		return Sequence{}, err
	}
	return q.Eval(d)
}

// QueryString is Query followed by XML serialization of the result, the
// way the paper prints query outputs.
func (d *Document) QueryString(src string) (string, error) {
	res, err := d.Query(src)
	if err != nil {
		return "", err
	}
	return res.String(), nil
}

// Stream compiles src and starts a lazy, cursor-driven evaluation:
// result items are produced on demand, so taking n items does only the
// work those n items required (the early-exit property of the cursor
// engine). ctx may be nil; when it is canceled the stream's Next
// returns an error within a bounded number of items.
func (d *Document) Stream(ctx context.Context, src string) (*Stream, error) {
	q, err := Compile(src)
	if err != nil {
		return nil, err
	}
	return q.Stream(ctx, d), nil
}

// Stream is a lazy result stream. Next yields items one at a time,
// each wrapped as a one-item Sequence (so callers render it with the
// usual String/Text). A Stream needs no Close: abandoning it simply
// stops the evaluation.
type Stream struct {
	s *xquery.Stream
	d *core.Document
}

// Next returns the next result item as a one-item Sequence. ok is
// false when the stream is exhausted.
func (s *Stream) Next() (item Sequence, ok bool, err error) {
	it, ok, err := s.s.Next()
	if err != nil || !ok {
		return Sequence{}, false, err
	}
	return Sequence{s: xquery.Seq{it}, d: s.d}, true, nil
}

// Count reports how many items Next has produced so far.
func (s *Stream) Count() int { return s.s.Count() }

// Take drains up to n items (all remaining when n <= 0) into a
// Sequence. Evaluation stops once n items are produced — the upstream
// operators do no further work.
func (s *Stream) Take(n int) (Sequence, error) {
	out, err := s.s.Take(n)
	if err != nil {
		return Sequence{}, err
	}
	return Sequence{s: out, d: s.d}, nil
}

// IsCanceled reports whether err is an evaluation stopped by its
// context (deadline exceeded or client disconnect).
func IsCanceled(err error) bool {
	var xe *xquery.Error
	return errors.As(err, &xe) && xe.Code == "MHXQ0002"
}

// Explain compiles and evaluates src with per-operator instrumentation,
// returning the result together with the physical operator tree: which
// steps ran as structural-index scans versus axis-step scans, and the
// cardinalities each operator observed.
func (d *Document) Explain(src string) (Sequence, *PlanOp, error) {
	q, err := Compile(src)
	if err != nil {
		return Sequence{}, nil, err
	}
	return q.Explain(d)
}

// ExplainAnalyze is Explain upgraded to a true EXPLAIN ANALYZE: the
// query runs with wall-time instrumentation and each operator of the
// returned tree carries its observed time (PlanOp.Nanos, inclusive of
// children); the root's Nanos is the total query wall time.
func (d *Document) ExplainAnalyze(src string) (Sequence, *PlanOp, error) {
	q, err := Compile(src)
	if err != nil {
		return Sequence{}, nil, err
	}
	return q.ExplainAnalyze(d)
}

// PlanOp is one node of the physical operator tree Explain returns.
// Op is the operator ("query", "path", "index-scan", "chain-scan",
// "axis-step", "primary"), Detail the rendered step, Index whether the
// operator reads the structural name index. Calls, InRows and OutRows
// are the cardinalities observed during the instrumented evaluation:
// how often the operator ran, and how many context items it consumed
// and result items it emitted in total. Nanos is the observed wall
// time under ExplainAnalyze (zero under plain Explain), inclusive of
// the operator's children.
type PlanOp struct {
	Op      string `json:"op"`
	Detail  string `json:"detail,omitempty"`
	Index   bool   `json:"index"`
	Calls   int64  `json:"calls,omitempty"`
	InRows  int64  `json:"in_rows,omitempty"`
	OutRows int64  `json:"out_rows,omitempty"`
	// EstRows is the planner's estimated output cardinality for the
	// operator, derived from the document's path synopsis (nil when the
	// planner had no estimate). Compare against OutRows to judge
	// estimate accuracy; the Detail line carries an "est=N" suffix.
	EstRows *int64 `json:"est_rows,omitempty"`
	Nanos   int64  `json:"nanos,omitempty"`
	// Parallel marks operators eligible for morsel-driven parallel
	// execution; when an analyzed evaluation engaged it, Morsels counts
	// the dispatched morsels, WorkerRows the candidate rows examined per
	// worker slot (slot 0 is the evaluating goroutine) and Workers the
	// slots that did any work. The Detail line then carries a
	// "workers=N morsels=M" suffix.
	Parallel   bool      `json:"parallel,omitempty"`
	Workers    int       `json:"workers,omitempty"`
	Morsels    int64     `json:"morsels,omitempty"`
	WorkerRows []int64   `json:"worker_rows,omitempty"`
	Children   []*PlanOp `json:"children,omitempty"`
}

func planOpFrom(e *xquery.ExplainOp) *PlanOp {
	if e == nil {
		return nil
	}
	out := &PlanOp{
		Op: e.Op, Detail: e.Detail, Index: e.Index,
		Calls: e.Calls, InRows: e.InRows, OutRows: e.OutRows,
		EstRows: e.EstRows, Nanos: e.Nanos,
		Parallel: e.Parallel, Workers: e.Workers,
		Morsels: e.Morsels, WorkerRows: e.WorkerRows,
	}
	for _, k := range e.Children {
		out.Children = append(out.Children, planOpFrom(k))
	}
	return out
}

// SetQueryWorkers sets the process-wide maximum number of workers
// (including the evaluating goroutine) a single query evaluation may
// use for morsel-driven parallel execution. 1 disables intra-query
// parallelism; 0 restores the GOMAXPROCS default. Workers are drawn
// from the same bounded scheduler as collection fan-out, so raising
// this never multiplies total process concurrency.
func SetQueryWorkers(n int) { xquery.SetQueryWorkers(n) }

// QueryWorkers reports the effective intra-query parallelism.
func QueryWorkers() int { return xquery.QueryWorkers() }

// Query is a compiled extended-XQuery expression, reusable across
// documents and safe for concurrent evaluation.
type Query struct {
	q *xquery.Query
}

// Compile parses an extended-XQuery expression.
func Compile(src string) (*Query, error) {
	q, err := xquery.Compile(src)
	if err != nil {
		return nil, err
	}
	return &Query{q: q}, nil
}

// MustCompile is Compile panicking on error.
func MustCompile(src string) *Query {
	q, err := Compile(src)
	if err != nil {
		panic(err)
	}
	return q
}

// Source returns the query text.
func (q *Query) Source() string { return q.q.Source() }

// Explain evaluates the query with per-operator instrumentation,
// returning the result and the physical operator tree (see
// Document.Explain).
func (q *Query) Explain(d *Document) (Sequence, *PlanOp, error) {
	s, tree, err := q.q.Explain(d.g, nil, nil)
	if err != nil {
		return Sequence{}, nil, err
	}
	return Sequence{s: s, d: d.g}, planOpFrom(tree), nil
}

// ExplainAnalyze evaluates the query with cardinality and wall-time
// instrumentation, returning the result and the analyzed operator tree
// (see Document.ExplainAnalyze).
func (q *Query) ExplainAnalyze(d *Document) (Sequence, *PlanOp, error) {
	s, tree, err := q.q.ExplainAnalyze(d.g, nil, nil)
	if err != nil {
		return Sequence{}, nil, err
	}
	return Sequence{s: s, d: d.g}, planOpFrom(tree), nil
}

// Eval evaluates the query. Temporary hierarchies created by
// analyze-string are private to the evaluation; the document is never
// mutated.
func (q *Query) Eval(d *Document) (Sequence, error) {
	s, err := q.q.Eval(d.g)
	if err != nil {
		return Sequence{}, err
	}
	return Sequence{s: s, d: d.g}, nil
}

// Stream starts a lazy evaluation of the compiled query (see
// Document.Stream). ctx may be nil.
func (q *Query) Stream(ctx context.Context, d *Document) *Stream {
	return &Stream{s: q.q.Stream(ctx, d.g, nil, nil), d: d.g}
}

// EvalWith evaluates the query with externally bound variables.
// Supported value types: string, bool, float64, int, []string, and
// slices of any of those.
func (q *Query) EvalWith(d *Document, vars map[string]any) (Sequence, error) {
	conv := make(map[string]xquery.Seq, len(vars))
	for name, v := range vars {
		seq, err := toSeq(v)
		if err != nil {
			return Sequence{}, fmt.Errorf("mhxquery: variable $%s: %w", name, err)
		}
		conv[name] = seq
	}
	s, err := q.q.EvalWithVars(d.g, conv)
	if err != nil {
		return Sequence{}, err
	}
	return Sequence{s: s, d: d.g}, nil
}

func toSeq(v any) (xquery.Seq, error) {
	switch x := v.(type) {
	case string:
		return xquery.Seq{x}, nil
	case bool:
		return xquery.Seq{x}, nil
	case float64:
		return xquery.Seq{x}, nil
	case int:
		return xquery.Seq{float64(x)}, nil
	case []string:
		out := make(xquery.Seq, len(x))
		for i, s := range x {
			out[i] = s
		}
		return out, nil
	case []any:
		var out xquery.Seq
		for _, e := range x {
			s, err := toSeq(e)
			if err != nil {
				return nil, err
			}
			out = append(out, s...)
		}
		return out, nil
	}
	return nil, fmt.Errorf("unsupported value type %T", v)
}

// Sequence is a query result.
type Sequence struct {
	s xquery.Seq
	d *core.Document
}

// Len returns the number of items.
func (s Sequence) Len() int { return len(s.s) }

// String serializes the sequence as the paper prints results: nodes as
// XML, atomic values as text, one space between adjacent atomic items.
func (s Sequence) String() string { return xquery.Serialize(s.s) }

// Text serializes the sequence as plain text (string values, no markup).
func (s Sequence) Text() string { return xquery.SerializeText(s.s) }

// Item returns the i-th item as a Value.
func (s Sequence) Item(i int) Value {
	it := s.s[i]
	if n, ok := it.(*dom.Node); ok {
		return Value{node: &Node{n: n, d: s.d}}
	}
	return Value{atom: it}
}

// Strings returns the string value of every item.
func (s Sequence) Strings() []string {
	out := make([]string, len(s.s))
	for i := range s.s {
		out[i] = s.Item(i).Text()
	}
	return out
}

// Value is one result item: either a node or an atomic value.
type Value struct {
	node *Node
	atom any
}

// IsNode reports whether the value is a node.
func (v Value) IsNode() bool { return v.node != nil }

// Node returns the node, or nil for atomic values.
func (v Value) Node() *Node { return v.node }

// Text returns the string value.
func (v Value) Text() string {
	if v.node != nil {
		return v.node.Text()
	}
	switch a := v.atom.(type) {
	case string:
		return a
	case bool:
		if a {
			return "true"
		}
		return "false"
	}
	return fmt.Sprint(v.atom)
}

// Node is a read-only view of a KyGODDAG or result-tree node.
type Node struct {
	n *dom.Node
	d *core.Document
}

// Kind returns the node kind name ("element", "text", "leaf", ...).
func (n *Node) Kind() string { return n.n.Kind.String() }

// Name returns the element/attribute name ("" for text and leaves).
func (n *Node) Name() string { return n.n.Name }

// Text returns the node's string value.
func (n *Node) Text() string { return n.n.TextContent() }

// Hierarchy returns the markup hierarchy the node belongs to ("" for the
// shared root, leaves and constructed nodes).
func (n *Node) Hierarchy() string { return n.n.Hier }

// Span returns the node's byte span of the base text.
func (n *Node) Span() (start, end int) { return n.n.Start, n.n.End }

// Attr returns the value of the named attribute.
func (n *Node) Attr(name string) (string, bool) { return n.n.Attr(name) }

// XML serializes the node.
func (n *Node) XML() string { return dom.XML(n.n) }
