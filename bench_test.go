// Benchmarks regenerating every figure/example of the paper plus the
// quantitative tables P1–P5 of EXPERIMENTS.md. Run:
//
//	go test -bench=. -benchmem
//
// Experiment index (EXPERIMENTS.md / DESIGN.md §5):
//
//	E1  BenchmarkFig1ParseEncodings      — parse the four Fig. 1 encodings
//	E2  BenchmarkFig2BuildKyGODDAG       — build the Fig. 2 KyGODDAG
//	E3  BenchmarkQueryI1                 — Query I.1 (split word, overlap)
//	E4  BenchmarkQueryI2                 — Query I.2 (damaged words)
//	E5  BenchmarkExample1AnalyzeString   — Definition 4, Example 1
//	E6  BenchmarkQueryII1                — Query II.1 (substring highlight)
//	E7  BenchmarkQueryIII1               — Query III.1 (match + restoration)
//	P1  BenchmarkBuildScaling/*          — KyGODDAG construction scaling
//	P2  BenchmarkAxes*/Reference         — interval vs Definition-1-literal axes
//	P3  BenchmarkDamagedWords*           — KyGODDAG vs fragmentation vs milestones
//	P4  BenchmarkAnalyzeStringScaling/*  — temp-hierarchy overlay cost
//	P5  BenchmarkParseThroughput/*       — document-centric parse throughput
//	P7  BenchmarkCollectionFanOut/*      — sequential vs parallel corpus fan-out
//	P8  BenchmarkCompileCache/*          — cold compile vs LRU cache hit
//	P9  BenchmarkPathPipeline/*          — order-aware path pipeline at 1/10/100× scale
//	P10 BenchmarkIndexedDescendant/*     — structural name index, //name steps at 1/10/100×
//	P14 BenchmarkParallelScan/*          — morsel-parallel index scan, 1/2/4/GOMAXPROCS workers
//
// scripts/bench.sh runs the evaluator-level subset (E3–E7, P9, P10)
// with -count and emits BENCH_eval.json, the recorded perf trajectory.
package mhxquery_test

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"testing"

	"mhxquery"
	"mhxquery/internal/collection"
	"mhxquery/internal/core"
	"mhxquery/internal/corpus"
	"mhxquery/internal/dom"
	"mhxquery/internal/fragment"
	"mhxquery/internal/slab"
	"mhxquery/internal/store"
	"mhxquery/internal/xmlparse"
	"mhxquery/internal/xquery"
)

// ---- E1/E2: Figure 1 and Figure 2 -----------------------------------------

func BenchmarkFig1ParseEncodings(b *testing.B) {
	xml := corpus.BoethiusXML()
	names := corpus.BoethiusHierarchies()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, name := range names {
			if _, err := xmlparse.Parse(xml[name], xmlparse.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkFig2BuildKyGODDAG(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		trees, err := corpus.BoethiusTrees()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := core.Build(trees); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- E3–E7: the paper's queries -------------------------------------------

func benchQuery(b *testing.B, src, want string) {
	b.Helper()
	d := corpus.MustBoethius()
	q := xquery.MustCompile(src)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := q.Eval(d)
		if err != nil {
			b.Fatal(err)
		}
		if got := xquery.Serialize(res); got != want {
			b.Fatalf("got %q, want %q", got, want)
		}
	}
}

func BenchmarkQueryI1(b *testing.B) {
	benchQuery(b, `for $l in /descendant::line
  [xdescendant::w[string(.) = 'singallice'] or overlapping::w[string(.) = 'singallice']]
return string($l)`,
		"gesceaftum unawendendne sin gallice sibbe gecynde þa")
}

func BenchmarkQueryI2(b *testing.B) {
	benchQuery(b, `for $l in /descendant::line[xdescendant::w[xancestor::dmg or xdescendant::dmg or overlapping::dmg]]
return ( for $leaf in $l/descendant::leaf() return
   if ($leaf[ancestor::w and ancestor::dmg]) then <b>{$leaf}</b> else $leaf
 , <br/> )`,
		"gesceaftum una<b>w</b>endendne sin<br/>gallice sibbe gecyn<b>de</b> <b>þa</b><br/>")
}

func BenchmarkExample1AnalyzeString(b *testing.B) {
	benchQuery(b, `for $w in /descendant::w[string(.) = 'unawendendne']
return serialize(analyze-string($w, ".*un<a>a</a>we.*"))`,
		`<res><m>un<a>a</a>we</m>ndendne</res>`)
}

func BenchmarkQueryII1(b *testing.B) {
	benchQuery(b, `for $w in /descendant::w[matches(string(.), ".*unawe.*")]
return (
  let $res := analyze-string($w, ".*unawe.*")
  for $n in $res/child::node()
  return if ($n[self::m]) then <b>{string($n)}</b> else string($n)
  ,
  <br/>
)`,
		"<b>unawe</b>ndendne<br/>")
}

func BenchmarkQueryIII1(b *testing.B) {
	benchQuery(b, `for $w in /descendant::w[matches(string(.), ".*unawe.*")]
return (
  let $res := analyze-string($w, ".*unawe.*")
  for $n in $res/child::node()
  return
    if ($n[self::m][xancestor::res('restoration') or xdescendant::res('restoration') or overlapping::res('restoration')])
    then <i><b>{string($n)}</b></i>
    else <b>{string($n)}</b>
  ,
  <br/>
)`,
		"<i><b>unawe</b></i><b>ndendne</b><br/>")
}

// ---- P1: construction scaling ----------------------------------------------

func BenchmarkBuildScaling(b *testing.B) {
	for _, words := range []int{100, 1000, 10000} {
		c := corpus.Generate(corpus.Params{Seed: 1, Words: words})
		b.Run(fmt.Sprintf("words=%d", words), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				trees, err := c.Trees()
				if err != nil {
					b.Fatal(err)
				}
				if _, err := core.Build(trees); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---- P2: axis evaluation, interval vs Definition-1-literal reference --------

func axisBenchDoc(b *testing.B, words int) *core.Document {
	b.Helper()
	c := corpus.Generate(corpus.Params{Seed: 2, Words: words, DamageRate: 0.15})
	d, err := c.Document()
	if err != nil {
		b.Fatal(err)
	}
	return d
}

// impl selects one of the three extended-axis implementations: the
// indexed default, the O(N) interval scan, or the literal Definition 1
// set-based reference.
func benchAxis(b *testing.B, impl string, ax core.Axis, words int) {
	d := axisBenchDoc(b, words)
	h := d.HierarchyByName("structure")
	var targets []int
	for i, n := range h.Nodes {
		if n.Name == "w" {
			targets = append(targets, i)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := h.Nodes[targets[i%len(targets)]]
		switch impl {
		case "indexed":
			d.Eval(ax, n)
		case "scan":
			d.EvalScan(ax, n)
		default:
			d.EvalRef(ax, n)
		}
	}
}

func BenchmarkAxesOverlappingIndexed(b *testing.B) {
	benchAxis(b, "indexed", core.AxisOverlapping, 500)
}
func BenchmarkAxesOverlappingScan(b *testing.B)      { benchAxis(b, "scan", core.AxisOverlapping, 500) }
func BenchmarkAxesOverlappingReference(b *testing.B) { benchAxis(b, "ref", core.AxisOverlapping, 500) }
func BenchmarkAxesXAncestorIndexed(b *testing.B)     { benchAxis(b, "indexed", core.AxisXAncestor, 500) }
func BenchmarkAxesXAncestorScan(b *testing.B)        { benchAxis(b, "scan", core.AxisXAncestor, 500) }
func BenchmarkAxesXAncestorReference(b *testing.B)   { benchAxis(b, "ref", core.AxisXAncestor, 500) }
func BenchmarkAxesXDescendantIndexed(b *testing.B) {
	benchAxis(b, "indexed", core.AxisXDescendant, 500)
}
func BenchmarkAxesXDescendantScan(b *testing.B)   { benchAxis(b, "scan", core.AxisXDescendant, 500) }
func BenchmarkAxesXFollowingIndexed(b *testing.B) { benchAxis(b, "indexed", core.AxisXFollowing, 500) }
func BenchmarkAxesXFollowingScan(b *testing.B)    { benchAxis(b, "scan", core.AxisXFollowing, 500) }

// ---- P3: the [6] comparison — damaged words over three representations -------

func damagedWorkload(b *testing.B, words int) (*core.Document, *corpus.Corpus) {
	b.Helper()
	c := corpus.Generate(corpus.Params{Seed: 3, Words: words, DamageRate: 0.12})
	d, err := c.Document()
	if err != nil {
		b.Fatal(err)
	}
	return d, c
}

func BenchmarkDamagedWordsKyGODDAG(b *testing.B) {
	for _, words := range []int{200, 1000, 5000} {
		d, c := damagedWorkload(b, words)
		want := len(c.Truth.DamagedWords)
		b.Run(fmt.Sprintf("words=%d", words), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				got := fragment.NativeDamagedWordIndices(d, "w", "dmg")
				if len(got) != want {
					b.Fatalf("damaged = %d, want %d", len(got), want)
				}
			}
		})
	}
}

func BenchmarkDamagedWordsFragmentation(b *testing.B) {
	for _, words := range []int{200, 1000, 5000} {
		d, c := damagedWorkload(b, words)
		want := len(c.Truth.DamagedWords)
		// The baseline stores ONE flat document; query time includes
		// chain reassembly and interval re-derivation, as in [6].
		flat := fragment.Fragment(d)
		b.Run(fmt.Sprintf("words=%d", words), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				fragment.AnnotateOffsets(flat)
				logical := fragment.ReassembleFragments(flat)
				got := fragment.DamagedWordIndices(logical["w"], logical["dmg"])
				if len(got) != want {
					b.Fatalf("damaged = %d, want %d", len(got), want)
				}
			}
		})
	}
}

func BenchmarkDamagedWordsMilestone(b *testing.B) {
	for _, words := range []int{200, 1000, 5000} {
		d, c := damagedWorkload(b, words)
		want := len(c.Truth.DamagedWords)
		flat, err := fragment.Milestone(d, "physical")
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("words=%d", words), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				fragment.AnnotateOffsets(flat)
				logical := fragment.ReassembleMilestones(flat)
				got := fragment.DamagedWordIndices(logical["w"], logical["dmg"])
				if len(got) != want {
					b.Fatalf("damaged = %d, want %d", len(got), want)
				}
			}
		})
	}
}

// ---- P4: analyze-string overlay scaling --------------------------------------

func BenchmarkAnalyzeStringScaling(b *testing.B) {
	for _, words := range []int{100, 1000, 5000} {
		c := corpus.Generate(corpus.Params{Seed: 4, Words: words})
		d, err := c.Document()
		if err != nil {
			b.Fatal(err)
		}
		q := xquery.MustCompile(`count(analyze-string(/descendant::vline[1], "e")/descendant::m)`)
		b.Run(fmt.Sprintf("words=%d", words), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := q.Eval(d); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---- P5: parse throughput ------------------------------------------------------

func BenchmarkParseThroughput(b *testing.B) {
	for _, words := range []int{1000, 10000} {
		c := corpus.Generate(corpus.Params{Seed: 5, Words: words})
		xml := c.XML["structure"]
		b.Run(fmt.Sprintf("words=%d", words), func(b *testing.B) {
			b.SetBytes(int64(len(xml)))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := xmlparse.Parse(xml, xmlparse.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---- P9: order-aware path pipeline ------------------------------------------

// pathPipelineQueries are multi-step path workloads exercising the step
// evaluation pipeline: multi-context steps, extended axes inside
// predicates, full leaf scans and positional selection.
var pathPipelineQueries = []struct{ name, src string }{
	{"damaged", `count(/descendant::w[xancestor::dmg or xdescendant::dmg or overlapping::dmg])`},
	{"split", `count(/descendant::w[overlapping::line])`},
	{"leafscan", `count(/descendant::vline/child::w/descendant::leaf())`},
	{"firstword", `count(/descendant::vline/child::w[1])`},
}

// BenchmarkPathPipeline measures multi-step path evaluation over the
// four-hierarchy generated manuscript at 1×, 10× and 100× the scale of
// the paper's Boethius fixture (6 words).
func BenchmarkPathPipeline(b *testing.B) {
	for _, scale := range []struct {
		name  string
		words int
	}{{"1x", 6}, {"10x", 60}, {"100x", 600}} {
		c := corpus.Generate(corpus.Params{Seed: 9, Words: scale.words, DamageRate: 0.12})
		d, err := c.Document()
		if err != nil {
			b.Fatal(err)
		}
		for _, q := range pathPipelineQueries {
			cq := xquery.MustCompile(q.src)
			res, err := cq.Eval(d)
			if err != nil {
				b.Fatal(err)
			}
			want := xquery.Serialize(res)
			b.Run(scale.name+"/"+q.name, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					res, err := cq.Eval(d)
					if err != nil {
						b.Fatal(err)
					}
					if got := xquery.Serialize(res); got != want {
						b.Fatalf("got %q, want %q", got, want)
					}
				}
			})
		}
	}
}

// ---- P10: structural name index, //name-selective steps ----------------------

// indexedDescendantQueries are name-selective descendant workloads: the
// shapes the structural name index turns from full-GODDAG walks into
// O(matches) run scans.
var indexedDescendantQueries = []struct{ name, src string }{
	{"w", `count(/descendant::w)`},
	{"line", `count(/descendant::line)`},
	{"abbrev", `count(//w)`},
	{"subtree", `count(/descendant::vline/descendant::w)`},
}

// BenchmarkIndexedDescendant measures //name-leading path evaluation
// over the four-hierarchy generated manuscript at 1×, 10× and 100× the
// scale of the paper's Boethius fixture (6 words).
func BenchmarkIndexedDescendant(b *testing.B) {
	for _, scale := range []struct {
		name  string
		words int
	}{{"1x", 6}, {"10x", 60}, {"100x", 600}} {
		c := corpus.Generate(corpus.Params{Seed: 10, Words: scale.words, DamageRate: 0.12})
		d, err := c.Document()
		if err != nil {
			b.Fatal(err)
		}
		for _, q := range indexedDescendantQueries {
			cq := xquery.MustCompile(q.src)
			res, err := cq.Eval(d)
			if err != nil {
				b.Fatal(err)
			}
			want := xquery.Serialize(res)
			b.Run(scale.name+"/"+q.name, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					res, err := cq.Eval(d)
					if err != nil {
						b.Fatal(err)
					}
					if got := xquery.Serialize(res); got != want {
						b.Fatalf("got %q, want %q", got, want)
					}
				}
			})
		}
	}
}

// ---- P11: early exit and FLWOR joins through the cursor engine ---------------

// earlyExitQueries are the O(answer) workloads: the consumer needs one
// item (or one existence bit) out of a result the strict engine would
// materialize in full.
var earlyExitQueries = []struct{ name, src string }{
	{"firstw", `(//w)[1]`},
	{"existsw", `exists(//w)`},
	{"existsdmg", `exists(//dmg)`},
	{"firstpred", `(//w[ancestor::vline])[1]`},
	{"somequant", `some $w in //w satisfies $w/ancestor::vline`},
}

// BenchmarkEarlyExit measures early-exit query shapes at 1×, 10× and
// 100× the Boethius scale. Under cursor execution these stay O(answer):
// the 100× cost should track the 1× cost, not the document size.
func BenchmarkEarlyExit(b *testing.B) {
	for _, scale := range []struct {
		name  string
		words int
	}{{"1x", 6}, {"10x", 60}, {"100x", 600}} {
		c := corpus.Generate(corpus.Params{Seed: 11, Words: scale.words, DamageRate: 0.12})
		d, err := c.Document()
		if err != nil {
			b.Fatal(err)
		}
		for _, q := range earlyExitQueries {
			cq := xquery.MustCompile(q.src)
			res, err := cq.Eval(d)
			if err != nil {
				b.Fatal(err)
			}
			want := xquery.Serialize(res)
			b.Run(scale.name+"/"+q.name, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					res, err := cq.Eval(d)
					if err != nil {
						b.Fatal(err)
					}
					if got := xquery.Serialize(res); got != want {
						b.Fatalf("got %q, want %q", got, want)
					}
				}
			})
		}
	}
}

// flworJoinQueries exercise FLWOR binding pipelines: nested for clauses
// whose bindings stream from index scans, a where filter, and an
// order-by that forces tuple materialization.
var flworJoinQueries = []struct{ name, src string }{
	{"nested", `for $v in /descendant::vline
	            for $w in $v/child::w
	            where exists($w/overlapping::line)
	            return string($w)`},
	{"ordered", `for $w in //w
	             order by string-length(string($w)) descending
	             return string($w)`},
}

// BenchmarkFLWORJoin measures FLWOR evaluation through the lowered
// plan at 1×, 10× and 100× scale.
func BenchmarkFLWORJoin(b *testing.B) {
	for _, scale := range []struct {
		name  string
		words int
	}{{"1x", 6}, {"10x", 60}, {"100x", 600}} {
		c := corpus.Generate(corpus.Params{Seed: 12, Words: scale.words, DamageRate: 0.12})
		d, err := c.Document()
		if err != nil {
			b.Fatal(err)
		}
		for _, q := range flworJoinQueries {
			cq := xquery.MustCompile(q.src)
			res, err := cq.Eval(d)
			if err != nil {
				b.Fatal(err)
			}
			want := xquery.Serialize(res)
			b.Run(scale.name+"/"+q.name, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					res, err := cq.Eval(d)
					if err != nil {
						b.Fatal(err)
					}
					if got := xquery.Serialize(res); got != want {
						b.Fatalf("got %q, want %q", got, want)
					}
				}
			})
		}
	}
}

// ---- P12: copy-on-write updates vs whole-document reparse ---------------------

// BenchmarkUpdateSmallEdit measures a single-node edit — renaming one
// damage-span element, the canonical annotate-a-damage-report change —
// through the copy-on-write update engine at 1×, 10× and 100× the
// Boethius scale, against BenchmarkUpdateReparse: the reparse+reindex
// of the whole document that a store without in-place updates would
// pay for the same change. The edit copies only the touched hierarchy
// (structural sharing for the other three), patches its name index
// incrementally, and shares the boundary array and leaf structs
// (patching only the per-version text→leaf edge table), so its cost
// tracks the touched hierarchy, not the document: at 100× the edit
// must be ≥10× cheaper than the reparse. BenchmarkUpdateLargestHier
// is the worst-case counterpart: the same edit aimed at the largest
// hierarchy, whose node slab dominates the copy.
func BenchmarkUpdateSmallEdit(b *testing.B) {
	benchUpdateRename(b, "damage", "dmg")
}

// BenchmarkUpdateLargestHier renames one w element: the touched
// hierarchy (structure) holds roughly half the document's nodes, the
// upper bound of the copy-on-write cost for a single-node edit.
func BenchmarkUpdateLargestHier(b *testing.B) {
	benchUpdateRename(b, "structure", "w")
}

func benchUpdateRename(b *testing.B, hier, elem string) {
	for _, scale := range []struct {
		name  string
		words int
	}{{"1x", 6}, {"10x", 60}, {"100x", 600}} {
		c := corpus.Generate(corpus.Params{Seed: 13, Words: scale.words, DamageRate: 0.12})
		d, err := c.Document()
		if err != nil {
			b.Fatal(err)
		}
		// Warm every name index: the benchmark measures the
		// incremental-maintenance path, not lazy first builds.
		for _, h := range d.Hiers {
			h.IndexRuns()
		}
		var target *dom.Node
		for _, n := range d.HierarchyByName(hier).Nodes {
			if n.Kind == dom.Element && n.Name == elem {
				target = n // last one: worst case for run patching
			}
		}
		if target == nil {
			b.Fatalf("no %s element in %s", elem, hier)
		}
		edits := []core.Edit{{Kind: core.EditRename, Target: target, Name: elem + "x"}}
		b.Run(scale.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				nd, _, err := d.Apply(edits)
				if err != nil {
					b.Fatal(err)
				}
				if nd.Rev != d.Rev+1 {
					b.Fatal("no new version")
				}
			}
		})
	}
}

// BenchmarkUpdateReparse is the from-scratch alternative to
// BenchmarkUpdateSmallEdit: re-parse all four encodings and rebuild
// the KyGODDAG (what Collection.Put of a re-encoded document costs).
func BenchmarkUpdateReparse(b *testing.B) {
	for _, scale := range []struct {
		name  string
		words int
	}{{"1x", 6}, {"10x", 60}, {"100x", 600}} {
		c := corpus.Generate(corpus.Params{Seed: 13, Words: scale.words, DamageRate: 0.12})
		b.Run(scale.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				trees, err := c.Trees()
				if err != nil {
					b.Fatal(err)
				}
				d, err := core.Build(trees)
				if err != nil {
					b.Fatal(err)
				}
				// Reindex too: the read path depends on the name
				// indexes the edit would have preserved.
				for _, h := range d.Hiers {
					h.IndexRuns()
				}
			}
		})
	}
}

// BenchmarkUpdateExpression measures the full update-language path
// (compile + target evaluation + apply) for the same single-node edit.
func BenchmarkUpdateExpression(b *testing.B) {
	for _, scale := range []struct {
		name  string
		words int
	}{{"1x", 6}, {"100x", 600}} {
		c := corpus.Generate(corpus.Params{Seed: 13, Words: scale.words, DamageRate: 0.12})
		d, err := c.Document()
		if err != nil {
			b.Fatal(err)
		}
		for _, h := range d.Hiers {
			h.IndexRuns()
		}
		b.Run(scale.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				u, err := xquery.CompileUpdate(`rename node (//w)[1] as "wx"`)
				if err != nil {
					b.Fatal(err)
				}
				if _, _, err := u.Apply(d); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkUpdateDurable measures the end-to-end durable update path —
// compile + apply + persist + publish, fsync included — through the
// write-ahead log (small appended record, group commit, background
// snapshots) against the pre-WAL write-through (whole document image
// encoded, fsynced and renamed on every update), at 1×/10×/100× the
// Boethius scale. The WAL's advantage grows with document size: the
// log record stays a few dozen bytes while the write-through image
// scales with the document.
func BenchmarkUpdateDurable(b *testing.B) {
	for _, mode := range []struct {
		name string
		opts collection.Options
	}{
		{"WAL", collection.Options{}},
		{"WriteThrough", collection.Options{WriteThrough: true}},
	} {
		for _, scale := range []struct {
			name  string
			words int
		}{{"1x", 6}, {"10x", 60}, {"100x", 600}} {
			c := corpus.Generate(corpus.Params{Seed: 13, Words: scale.words, DamageRate: 0.12})
			d, err := c.Document()
			if err != nil {
				b.Fatal(err)
			}
			b.Run(mode.name+"/"+scale.name, func(b *testing.B) {
				coll, err := collection.Open(b.TempDir(), mode.opts)
				if err != nil {
					b.Fatal(err)
				}
				defer coll.Close()
				if _, err := coll.Put("bench", d); err != nil {
					b.Fatal(err)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					// Renaming to the same name keeps the document a fixed
					// point, so the target exists on every iteration while
					// each update still commits a new durable version.
					if _, _, err := coll.Update("bench", `rename node (//w)[1] as "w"`); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// ---- P14: morsel-driven parallel intra-query execution -------------------------

// parallelScanQuery is the heavy parallel-eligible workload: the
// damaged-word selection filter (three extended-axis probes per word),
// drained in full so the entire candidate stream is filtered. Its
// predicate is position-independent, so the planner marks the fused
// index scan parallel.
const parallelScanQuery = `//w[xancestor::dmg or xdescendant::dmg or overlapping::dmg]`

// BenchmarkParallelScan measures the same full-drain scan at 1×, 10×
// and 100× scale with 1, 2, 4 and GOMAXPROCS intra-query workers.
// Engagement is thresholded (parallelism only pays past a few hundred
// candidates), so the 1× and 10× rows coincide across worker counts —
// that is the point: small scans never pay scheduling overhead. The
// speedup at 100× tracks physical core count; on a single-core host
// all worker counts coincide there too.
func BenchmarkParallelScan(b *testing.B) {
	defer xquery.SetQueryWorkers(0)
	workerSet := []int{1, 2, 4}
	if n := runtime.GOMAXPROCS(0); n != 1 && n != 2 && n != 4 {
		workerSet = append(workerSet, n)
	}
	for _, scale := range []struct {
		name  string
		words int
	}{{"1x", 6}, {"10x", 60}, {"100x", 600}} {
		c := corpus.Generate(corpus.Params{Seed: 14, Words: scale.words, DamageRate: 0.12})
		d, err := c.Document()
		if err != nil {
			b.Fatal(err)
		}
		cq := xquery.MustCompile(parallelScanQuery)
		xquery.SetQueryWorkers(1)
		res, err := cq.Eval(d)
		if err != nil {
			b.Fatal(err)
		}
		want := xquery.Serialize(res)
		for _, w := range workerSet {
			b.Run(fmt.Sprintf("%s/w%d", scale.name, w), func(b *testing.B) {
				xquery.SetQueryWorkers(w)
				defer xquery.SetQueryWorkers(0)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					res, err := cq.Eval(d)
					if err != nil {
						b.Fatal(err)
					}
					if got := xquery.Serialize(res); got != want {
						b.Fatalf("got %q, want %q", got, want)
					}
				}
			})
		}
	}
}

// ---- public API end-to-end ----------------------------------------------------

func BenchmarkPublicAPIEndToEnd(b *testing.B) {
	xml := corpus.BoethiusXML()
	var hs []mhxquery.Hierarchy
	for _, name := range corpus.BoethiusHierarchies() {
		hs = append(hs, mhxquery.Hierarchy{Name: name, XML: xml[name]})
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d, err := mhxquery.Parse(hs...)
		if err != nil {
			b.Fatal(err)
		}
		out, err := d.QueryString(`count(/descendant::w[overlapping::line])`)
		if err != nil || out != "1" {
			b.Fatalf("out=%q err=%v", out, err)
		}
	}
}

// ---- P6: binary store vs reparse --------------------------------------------

func BenchmarkStoreLoad(b *testing.B) {
	c := corpus.Generate(corpus.Params{Seed: 6, Words: 2000})
	d, err := c.Document()
	if err != nil {
		b.Fatal(err)
	}
	var img bytes.Buffer
	if err := store.Encode(&img, d); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(img.Len()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := store.Decode(bytes.NewReader(img.Bytes())); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStoreReparse(b *testing.B) {
	c := corpus.Generate(corpus.Params{Seed: 6, Words: 2000})
	size := 0
	for _, x := range c.XML {
		size += len(x)
	}
	b.SetBytes(int64(size))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		trees, err := c.Trees()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := core.Build(trees); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- P7: collection fan-out, sequential vs parallel ---------------------------

// collectionFixture builds a corpus of nDocs generated documents.
func collectionFixture(b *testing.B, nDocs, workers int) *mhxquery.Collection {
	b.Helper()
	c := mhxquery.NewCollection(mhxquery.CollectionOptions{Workers: workers})
	for i := 0; i < nDocs; i++ {
		g := corpus.Generate(corpus.Params{Seed: uint64(i + 1), Words: 400, DamageRate: 0.12})
		names := make([]string, 0, len(g.XML))
		for name := range g.XML {
			names = append(names, name)
		}
		sort.Strings(names)
		hs := make([]mhxquery.Hierarchy, len(names))
		for j, name := range names {
			hs[j] = mhxquery.Hierarchy{Name: name, XML: g.XML[name]}
		}
		d, err := mhxquery.Parse(hs...)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := c.Put(fmt.Sprintf("doc%02d", i), d); err != nil {
			b.Fatal(err)
		}
	}
	return c
}

// fanOutQuery is Query I.2's damaged-word selection, a representative
// multihierarchical workload (tree + extended axes per word).
const fanOutQuery = `count(/descendant::w[xancestor::dmg or xdescendant::dmg or overlapping::dmg])`

// BenchmarkCollectionFanOut compares sequential evaluation against the
// bounded worker pool. The speedup tracks the machine's core count: on
// a single-core host the two modes coincide (the pool adds only
// scheduling overhead), on an N-core host the parallel mode approaches
// min(N, docs, workers)×.
func BenchmarkCollectionFanOut(b *testing.B) {
	for _, nDocs := range []int{1, 4, 16} {
		for _, mode := range []struct {
			name    string
			workers int
		}{{"sequential", 1}, {"parallel", 4}} {
			b.Run(fmt.Sprintf("docs=%d/%s", nDocs, mode.name), func(b *testing.B) {
				c := collectionFixture(b, nDocs, mode.workers)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					results, err := c.QueryAll(fanOutQuery)
					if err != nil {
						b.Fatal(err)
					}
					if len(results) != nDocs {
						b.Fatalf("got %d results, want %d", len(results), nDocs)
					}
					for _, r := range results {
						if r.Err != nil {
							b.Fatal(r.Err)
						}
					}
				}
			})
		}
	}
}

// ---- P8: compiled-query cache, cold compile vs LRU hit ------------------------

func BenchmarkCompileCache(b *testing.B) {
	src := `for $l in /descendant::line[xdescendant::w[xancestor::dmg or xdescendant::dmg or overlapping::dmg]]
return ( for $leaf in $l/descendant::leaf() return
   if ($leaf[ancestor::w and ancestor::dmg]) then <b>{$leaf}</b> else $leaf
 , <br/> )`
	b.Run("cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := xquery.Compile(src); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cached", func(b *testing.B) {
		c := collection.New(collection.Options{})
		if _, err := c.Compile(src); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := c.Compile(src); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkStoreEncode(b *testing.B) {
	c := corpus.Generate(corpus.Params{Seed: 6, Words: 2000})
	d, err := c.Document()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var img bytes.Buffer
		if err := store.Encode(&img, d); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- P15: cold open — v2 tree decode vs v3 slab open --------------------------

// openColdFixture encodes the scaled generated manuscript in both
// snapshot formats and writes the v3 image to disk for the mmap leg.
func openColdFixture(b *testing.B, words int) (v2img, v3img []byte, v3path string) {
	b.Helper()
	d, err := corpus.Generate(corpus.Params{Seed: 14, Words: words, DamageRate: 0.12}).Document()
	if err != nil {
		b.Fatal(err)
	}
	var v2, v3 bytes.Buffer
	if err := store.EncodeSnapshotV2(&v2, d, 1); err != nil {
		b.Fatal(err)
	}
	if err := store.EncodeSnapshot(&v3, d, 1); err != nil {
		b.Fatal(err)
	}
	path := filepath.Join(b.TempDir(), "doc.mhx")
	if err := os.WriteFile(path, v3.Bytes(), 0o644); err != nil {
		b.Fatal(err)
	}
	return v2.Bytes(), v3.Bytes(), path
}

// BenchmarkOpenCold measures snapshot open latency at 1×/10×/100× the
// Boethius fixture: the v2 varint tree decode (rebuilds the KyGODDAG
// and its indexes eagerly) against the v3 slab open (validates
// checksums, installs the eager layers, materializes nothing) — from a
// byte slice and from a memory-mapped file.
func BenchmarkOpenCold(b *testing.B) {
	for _, scale := range []struct {
		name  string
		words int
	}{{"1x", 6}, {"10x", 60}, {"100x", 600}} {
		v2img, v3img, v3path := openColdFixture(b, scale.words)
		b.Run(scale.name+"/v2heap", func(b *testing.B) {
			b.SetBytes(int64(len(v2img)))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := store.DecodeSnapshot(bytes.NewReader(v2img)); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(scale.name+"/v3bytes", func(b *testing.B) {
			b.SetBytes(int64(len(v3img)))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := store.OpenSnapshotBytes(v3img); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(scale.name+"/v3mmap", func(b *testing.B) {
			b.SetBytes(int64(len(v3img)))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				// Map and unmap inside the iteration: the opened document
				// is discarded before the mapping goes away, and pairing
				// the two keeps b.N iterations from exhausting the map
				// table (real opens retain the mapping for process life).
				data, mapped, err := slab.MapFile(v3path)
				if err != nil {
					b.Fatal(err)
				}
				if _, _, err := store.OpenSnapshotBytes(data); err != nil {
					b.Fatal(err)
				}
				if err := slab.Unmap(data, mapped); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkOpenFirstQuery measures time-to-first-answer: open the
// snapshot and run one indexed count. The v3 leg pays lazy
// materialization on the first query; the comparison shows the cold
// open win survives the first real use.
func BenchmarkOpenFirstQuery(b *testing.B) {
	cq := xquery.MustCompile(`count(//w)`)
	for _, scale := range []struct {
		name  string
		words int
	}{{"1x", 6}, {"100x", 600}} {
		v2img, v3img, _ := openColdFixture(b, scale.words)
		want := ""
		b.Run(scale.name+"/v2heap", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				d, _, err := store.DecodeSnapshot(bytes.NewReader(v2img))
				if err != nil {
					b.Fatal(err)
				}
				res, err := cq.Eval(d)
				if err != nil {
					b.Fatal(err)
				}
				want = xquery.Serialize(res)
			}
		})
		b.Run(scale.name+"/v3slab", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				d, _, err := store.OpenSnapshotBytes(v3img)
				if err != nil {
					b.Fatal(err)
				}
				res, err := cq.Eval(d)
				if err != nil {
					b.Fatal(err)
				}
				if got := xquery.Serialize(res); want != "" && got != want {
					b.Fatalf("got %q, want %q", got, want)
				}
			}
		})
	}
}

// ---- P16: cost-based plan choice ----------------------------------------------

// BenchmarkPlanChoice measures the query shapes the synopsis-driven
// cost model steers — selectivity-ordered predicates, size-ordered
// FLWOR/quantifier bindings — at 1/10/100× scale, plus the cold
// compile+plan path itself (parse, lowering, synopsis-based estimation)
// so planning overhead stays on the recorded perf trajectory.
func BenchmarkPlanChoice(b *testing.B) {
	for _, scale := range []struct {
		name  string
		words int
	}{{"1x", 20}, {"10x", 200}, {"100x", 2000}} {
		c := corpus.Generate(corpus.Params{Seed: 17, Words: scale.words, DamageRate: 0.25, RestoreRate: 0.25})
		d, err := c.Document()
		if err != nil {
			b.Fatal(err)
		}
		for _, q := range []struct {
			name, src string
			maxWords  int // 0 = every scale; the quantifier product is
			// O(words²) with no early exit, so it stops at 10×
		}{
			{"predorder", `count(/descendant::w[descendant::zzz][child::node()])`, 0},
			{"flwororder", `count(for $a in /descendant::w for $b in /descendant::dmg return 1)`, 0},
			{"quantorder", `some $a in /descendant::w, $b in /descendant::line satisfies exists(child::zzz)`, 200},
		} {
			if q.maxWords != 0 && scale.words > q.maxWords {
				continue
			}
			cq := xquery.MustCompile(q.src)
			res, err := cq.Eval(d)
			if err != nil {
				b.Fatal(err)
			}
			want := xquery.Serialize(res)
			b.Run(scale.name+"/"+q.name, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					res, err := cq.Eval(d)
					if err != nil {
						b.Fatal(err)
					}
					if got := xquery.Serialize(res); got != want {
						b.Fatalf("got %q, want %q", got, want)
					}
				}
			})
		}
		b.Run(scale.name+"/plancold", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				q := xquery.MustCompile(`/descendant::vline/child::w[descendant::text()][descendant::zzz]`)
				if q.PlanFor(d) == nil {
					b.Fatal("no plan")
				}
			}
		})
	}
}
