// Command mhparse builds the KyGODDAG for a multihierarchical document
// and dumps diagnostics: composition statistics, the leaf partition table
// (the paper's Figure 2 in tabular form), a Graphviz rendering, or one of
// the single-document baseline encodings (fragmentation / milestones).
//
// Usage:
//
//	mhparse -h lines=a.xml -h words=b.xml -dump stats|leaves|dot|fragment|milestone
//	mhparse -boethius -dump dot | dot -Tsvg > fig2.svg
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"mhxquery/internal/core"
	"mhxquery/internal/corpus"
	"mhxquery/internal/dom"
	"mhxquery/internal/fragment"
	"mhxquery/internal/xmlparse"
)

func main() {
	var hiers multiFlag
	flag.Var(&hiers, "h", "hierarchy as name=file.xml (repeatable)")
	dump := flag.String("dump", "stats", "what to print: stats, leaves, dot, fragment, milestone")
	primary := flag.String("primary", "", "primary hierarchy for -dump milestone (default: first)")
	boethius := flag.Bool("boethius", false, "use the built-in Figure 1 fixture")
	flag.Parse()

	if err := run(hiers, *dump, *primary, *boethius); err != nil {
		fmt.Fprintln(os.Stderr, "mhparse:", err)
		os.Exit(1)
	}
}

type multiFlag []string

func (m *multiFlag) String() string { return strings.Join(*m, ",") }

func (m *multiFlag) Set(v string) error {
	*m = append(*m, v)
	return nil
}

func run(hiers []string, dump, primary string, boethius bool) error {
	var trees []core.NamedTree
	switch {
	case boethius:
		var err error
		trees, err = corpus.BoethiusTrees()
		if err != nil {
			return err
		}
	case len(hiers) > 0:
		for _, spec := range hiers {
			name, file, ok := strings.Cut(spec, "=")
			if !ok {
				return fmt.Errorf("want -h name=file, got %q", spec)
			}
			b, err := os.ReadFile(file)
			if err != nil {
				return err
			}
			root, err := xmlparse.Parse(string(b), xmlparse.Options{})
			if err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
			trees = append(trees, core.NamedTree{Name: name, Root: root})
		}
	default:
		return fmt.Errorf("no hierarchies given (-h name=file or -boethius)")
	}

	d, err := core.Build(trees)
	if err != nil {
		return err
	}
	switch dump {
	case "stats":
		s := d.Stats()
		fmt.Printf("base text:    %d bytes\n", len(d.Text))
		fmt.Printf("hierarchies:  %d (%s)\n", s.Hierarchies, strings.Join(d.HierarchyNames(), ", "))
		fmt.Printf("elements:     %d\n", s.Elements)
		fmt.Printf("text nodes:   %d\n", s.Texts)
		fmt.Printf("leaves:       %d\n", s.Leaves)
		fmt.Printf("tree edges:   %d\n", s.TreeEdges)
		fmt.Printf("leaf edges:   %d\n", s.LeafEdges)
	case "leaves":
		fmt.Print(d.LeafTable())
	case "dot":
		fmt.Print(d.DOT())
	case "fragment":
		fmt.Println(dom.XML(fragment.Fragment(d)))
	case "milestone":
		if primary == "" {
			primary = d.HierarchyNames()[0]
		}
		flat, err := fragment.Milestone(d, primary)
		if err != nil {
			return err
		}
		fmt.Println(dom.XML(flat))
	default:
		return fmt.Errorf("unknown -dump %q", dump)
	}
	return nil
}
