package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunDumps(t *testing.T) {
	for _, dump := range []string{"stats", "leaves", "dot", "fragment", "milestone"} {
		if err := run(nil, dump, "", true); err != nil {
			t.Errorf("dump %s: %v", dump, err)
		}
	}
	if err := run(nil, "milestone", "structure", true); err != nil {
		t.Errorf("milestone with explicit primary: %v", err)
	}
}

func TestRunFiles(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.xml")
	b := filepath.Join(dir, "b.xml")
	if err := os.WriteFile(a, []byte(`<r><p>ab</p><p>cd</p></r>`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(b, []byte(`<r>a<x>bc</x>d</r>`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"pages=" + a, "spans=" + b}, "stats", "", false); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	cases := []struct {
		name string
		fn   func() error
	}{
		{"no hierarchies", func() error { return run(nil, "stats", "", false) }},
		{"bad spec", func() error { return run([]string{"nofile"}, "stats", "", false) }},
		{"missing file", func() error { return run([]string{"a=/nope.xml"}, "stats", "", false) }},
		{"unknown dump", func() error { return run(nil, "bogus", "", true) }},
		{"unknown primary", func() error { return run(nil, "milestone", "nope", true) }},
	}
	for _, tc := range cases {
		if err := tc.fn(); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}
