package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"mhxquery"
)

// resultOf unwraps a row's result pointer ("<absent>" when nil, which
// marks an errored row).
func resultOf(q queryResult) string {
	if q.Result == nil {
		return "<absent>"
	}
	return *q.Result
}

func newTestServer(t *testing.T) *httptest.Server {
	ts, _ := newTestServerWith(t, 0)
	return ts
}

// newTestServerWith builds a server with a slow-query threshold and
// returns it along with the underlying server value (for log/metric
// assertions). Request logs go to io.Discard to keep test output quiet.
func newTestServerWith(t *testing.T, slow time.Duration) (*httptest.Server, *server) {
	t.Helper()
	coll, err := openCollection("", mhxquery.CollectionOptions{}, false)
	if err != nil {
		t.Fatal(err)
	}
	s := &server{coll: coll, slow: slow, logger: discardLogger()}
	ts := httptest.NewServer(s.routes())
	t.Cleanup(ts.Close)
	return ts, s
}

// do issues a JSON request and decodes the JSON response into out.
func do(t *testing.T, method, url string, body, out any) int {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req, err := http.NewRequest(method, url, &buf)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("%s %s: decoding response: %v", method, url, err)
		}
	}
	return resp.StatusCode
}

func putTestDoc(t *testing.T, base, name, pages, words string) {
	t.Helper()
	req := putDocRequest{Hierarchies: []hierarchyJSON{
		{Name: "pages", XML: pages},
		{Name: "words", XML: words},
	}}
	var info docInfo
	if code := do(t, http.MethodPut, base+"/docs/"+name, req, &info); code != http.StatusCreated {
		t.Fatalf("PUT %s: status %d", name, code)
	}
	if info.Name != name || len(info.Hierarchies) != 2 {
		t.Fatalf("PUT %s: info %+v", name, info)
	}
}

func TestServerEndToEnd(t *testing.T) {
	ts := newTestServer(t)

	// An empty corpus lists as [], never null.
	var empty struct {
		Docs  json.RawMessage `json:"docs"`
		Count int             `json:"count"`
	}
	if code := do(t, http.MethodGet, ts.URL+"/docs", nil, &empty); code != http.StatusOK {
		t.Fatalf("GET /docs (empty): status %d", code)
	}
	if string(empty.Docs) != "[]" || empty.Count != 0 {
		t.Fatalf("empty corpus listing = %s, count %d", empty.Docs, empty.Count)
	}

	// Ingest two documents.
	putTestDoc(t, ts.URL, "hello",
		`<r><page>Hello wo</page><page>rld</page></r>`,
		`<r><w>Hello</w> <w>world</w></r>`)
	putTestDoc(t, ts.URL, "greet",
		`<r><page>Good day</page></r>`,
		`<r><w>Good</w> <w>day</w></r>`)

	// healthz reports the corpus size.
	var health struct {
		Status string `json:"status"`
		Docs   int    `json:"docs"`
	}
	if code := do(t, http.MethodGet, ts.URL+"/healthz", nil, &health); code != http.StatusOK {
		t.Fatalf("healthz: status %d", code)
	}
	if health.Status != "ok" || health.Docs != 2 {
		t.Fatalf("healthz = %+v", health)
	}

	// Listing.
	var list struct {
		Docs  []docInfo `json:"docs"`
		Count int       `json:"count"`
	}
	if code := do(t, http.MethodGet, ts.URL+"/docs", nil, &list); code != http.StatusOK {
		t.Fatalf("GET /docs: status %d", code)
	}
	if list.Count != 2 || list.Docs[0].Name != "greet" || list.Docs[1].Name != "hello" {
		t.Fatalf("GET /docs = %+v", list)
	}
	if list.Docs[1].Stats.Hierarchies != 2 || list.Docs[1].TextBytes != len("Hello world") {
		t.Fatalf("hello info = %+v", list.Docs[1])
	}

	// Single-document query: the multihierarchical overlap axis.
	var qr queryResponse
	code := do(t, http.MethodPost, ts.URL+"/query",
		queryRequest{Query: `for $w in /descendant::w[overlapping::page] return string($w)`, Doc: "hello"}, &qr)
	if code != http.StatusOK {
		t.Fatalf("POST /query: status %d", code)
	}
	if len(qr.Results) != 1 || resultOf(qr.Results[0]) != "world" {
		t.Fatalf("single-doc query = %+v", qr)
	}

	// Collection-wide fan-out, text format.
	qr = queryResponse{}
	code = do(t, http.MethodPost, ts.URL+"/query",
		queryRequest{Query: `count(/descendant::w)`, Format: "text"}, &qr)
	if code != http.StatusOK {
		t.Fatalf("POST /query (collection): status %d", code)
	}
	if len(qr.Results) != 2 || qr.Results[0].Doc != "greet" || resultOf(qr.Results[0]) != "2" ||
		qr.Results[1].Doc != "hello" || resultOf(qr.Results[1]) != "2" {
		t.Fatalf("collection query = %+v", qr)
	}

	// Glob-restricted fan-out.
	qr = queryResponse{}
	if code := do(t, http.MethodPost, ts.URL+"/query",
		queryRequest{Query: `string(/descendant::page[1])`, Collection: "h*"}, &qr); code != http.StatusOK {
		t.Fatalf("POST /query (glob): status %d", code)
	}
	if len(qr.Results) != 1 || qr.Results[0].Doc != "hello" || resultOf(qr.Results[0]) != "Hello wo" {
		t.Fatalf("glob query = %+v", qr)
	}

	// Cross-document doc() reference inside a query.
	qr = queryResponse{}
	if code := do(t, http.MethodPost, ts.URL+"/query",
		queryRequest{Query: `string-join((for $w in doc("greet")/descendant::w return string($w)), " ")`, Doc: "hello"}, &qr); code != http.StatusOK {
		t.Fatalf("POST /query (doc()): status %d", code)
	}
	if resultOf(qr.Results[0]) != "Good day" {
		t.Fatalf("doc() query = %+v", qr)
	}

	// Re-ingest replaces (200, not 201) and DELETE removes.
	req := putDocRequest{Hierarchies: []hierarchyJSON{
		{Name: "pages", XML: `<r><page>Bye</page></r>`},
		{Name: "words", XML: `<r><w>Bye</w></r>`},
	}}
	if code := do(t, http.MethodPut, ts.URL+"/docs/hello", req, &docInfo{}); code != http.StatusOK {
		t.Fatalf("replace: status %d", code)
	}
	if code := do(t, http.MethodDelete, ts.URL+"/docs/hello", nil, nil); code != http.StatusNoContent {
		t.Fatalf("delete: status %d", code)
	}
	if code := do(t, http.MethodGet, ts.URL+"/docs/hello", nil, &errorResponse{}); code != http.StatusNotFound {
		t.Fatalf("get after delete: status %d", code)
	}
}

func TestServerErrors(t *testing.T) {
	ts := newTestServer(t)
	putTestDoc(t, ts.URL, "hello",
		`<r><page>Hello wo</page><page>rld</page></r>`,
		`<r><w>Hello</w> <w>world</w></r>`)

	cases := []struct {
		name   string
		method string
		path   string
		body   any
		want   int
	}{
		{"query unknown doc", "POST", "/query", queryRequest{Query: `1`, Doc: "nope"}, http.StatusNotFound},
		{"query bad syntax", "POST", "/query", queryRequest{Query: `for $x in`, Doc: "hello"}, http.StatusBadRequest},
		{"query empty", "POST", "/query", queryRequest{Doc: "hello"}, http.StatusBadRequest},
		{"query bad format", "POST", "/query", queryRequest{Query: `1`, Doc: "hello", Format: "yaml"}, http.StatusBadRequest},
		{"query doc+collection", "POST", "/query", queryRequest{Query: `1`, Doc: "hello", Collection: "*"}, http.StatusBadRequest},
		{"query bad glob", "POST", "/query", queryRequest{Query: `1`, Collection: "["}, http.StatusBadRequest},
		{"get unknown", "GET", "/docs/nope", nil, http.StatusNotFound},
		{"delete unknown", "DELETE", "/docs/nope", nil, http.StatusNotFound},
		{"put empty", "PUT", "/docs/x", putDocRequest{}, http.StatusBadRequest},
		{"put bad xml", "PUT", "/docs/x", putDocRequest{Hierarchies: []hierarchyJSON{{Name: "a", XML: "<r>"}}}, http.StatusBadRequest},
		{"put mismatched text", "PUT", "/docs/x", putDocRequest{Hierarchies: []hierarchyJSON{
			{Name: "a", XML: "<r>ab</r>"}, {Name: "b", XML: "<r>xy</r>"},
		}}, http.StatusBadRequest},
		{"put invalid name", "PUT", "/docs/a%20b", putDocRequest{Hierarchies: []hierarchyJSON{{Name: "a", XML: "<r>ab</r>"}}}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		var er errorResponse
		code := do(t, tc.method, ts.URL+tc.path, tc.body, &er)
		if code != tc.want {
			t.Errorf("%s: status %d, want %d (error %q)", tc.name, code, tc.want, er.Error)
			continue
		}
		if er.Error == "" {
			t.Errorf("%s: no error message in body", tc.name)
		}
	}

	// Malformed JSON body.
	resp, err := http.Post(ts.URL+"/query", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed JSON: status %d", resp.StatusCode)
	}
}

func TestServerPersistence(t *testing.T) {
	dir := t.TempDir()
	coll, err := openCollection(dir, mhxquery.CollectionOptions{}, true)
	if err != nil {
		t.Fatal(err)
	}
	s := &server{coll: coll, logger: discardLogger()}
	ts := httptest.NewServer(s.routes())

	// The preloaded Boethius fixture answers a paper query.
	var qr queryResponse
	if code := do(t, http.MethodPost, ts.URL+"/query",
		queryRequest{Query: `count(/descendant::w[overlapping::line])`, Doc: "boethius"}, &qr); code != http.StatusOK {
		t.Fatalf("boethius query: status %d", code)
	}
	if resultOf(qr.Results[0]) != "1" {
		t.Fatalf("boethius query = %+v", qr)
	}
	putTestDoc(t, ts.URL, "hello",
		`<r><page>Hello wo</page><page>rld</page></r>`,
		`<r><w>Hello</w> <w>world</w></r>`)
	ts.Close()
	coll.Close()

	// A second server over the same directory recovers the corpus.
	coll2, err := openCollection(dir, mhxquery.CollectionOptions{}, false)
	if err != nil {
		t.Fatal(err)
	}
	s2 := &server{coll: coll2, logger: discardLogger()}
	ts2 := httptest.NewServer(s2.routes())
	defer ts2.Close()
	var list struct {
		Count int `json:"count"`
	}
	if code := do(t, http.MethodGet, ts2.URL+"/docs", nil, &list); code != http.StatusOK || list.Count != 2 {
		t.Fatalf("reopened corpus: count=%d", list.Count)
	}
	qr = queryResponse{}
	if code := do(t, http.MethodPost, ts2.URL+"/query",
		queryRequest{Query: `string(/descendant::w[overlapping::page])`, Doc: "hello"}, &qr); code != http.StatusOK {
		t.Fatalf("reopened query: status %d", code)
	}
	if resultOf(qr.Results[0]) != "world" {
		t.Fatalf("reopened query = %+v", qr)
	}
}

// TestPprofRegistered checks that importing net/http/pprof wired the
// profiling handlers onto the default mux (which only the -pprof
// listener serves) and that the query API mux does NOT expose them.
func TestPprofRegistered(t *testing.T) {
	req := httptest.NewRequest("GET", "http://pprof/debug/pprof/cmdline", nil)
	rec := httptest.NewRecorder()
	http.DefaultServeMux.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("default mux /debug/pprof/cmdline = %d, want 200", rec.Code)
	}

	ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Fatal("query API mux exposes /debug/pprof — profiling must stay on the -pprof listener")
	}
}

func TestServerExplain(t *testing.T) {
	ts := newTestServer(t)
	putTestDoc(t, ts.URL, "hello",
		`<r><page>Hello wo</page><page>rld</page></r>`,
		`<r><w>Hello</w> <w>world</w></r>`)

	var resp queryResponse
	code := do(t, http.MethodPost, ts.URL+"/query?explain=1",
		queryRequest{Query: `/descendant::w`, Doc: "hello"}, &resp)
	if code != http.StatusOK {
		t.Fatalf("explain query: status %d", code)
	}
	if len(resp.Results) != 1 || resultOf(resp.Results[0]) != `<w>Hello</w><w>world</w>` {
		t.Fatalf("explain results = %+v", resp.Results)
	}
	if resp.Plan == nil || resp.Plan.Op != "query" {
		t.Fatalf("explain plan = %+v", resp.Plan)
	}
	// The //w-style leading step must surface as an index scan with its
	// observed cardinality.
	found := false
	var walk func(op *mhxquery.PlanOp)
	walk = func(op *mhxquery.PlanOp) {
		if op.Op == "index-scan" && op.Index && op.OutRows == 2 {
			found = true
		}
		for _, k := range op.Children {
			walk(k)
		}
	}
	walk(resp.Plan)
	if !found {
		b, _ := json.Marshal(resp.Plan)
		t.Fatalf("no index-scan operator with out_rows=2 in plan: %s", b)
	}

	// Without explain the plan is absent.
	resp = queryResponse{}
	if code := do(t, http.MethodPost, ts.URL+"/query",
		queryRequest{Query: `/descendant::w`, Doc: "hello"}, &resp); code != http.StatusOK {
		t.Fatalf("plain query: status %d", code)
	}
	if resp.Plan != nil {
		t.Fatal("plan present without explain=1")
	}

	// EXPLAIN needs a single target document.
	var errResp errorResponse
	if code := do(t, http.MethodPost, ts.URL+"/query?explain=1",
		queryRequest{Query: `1`}, &errResp); code != http.StatusBadRequest {
		t.Fatalf("explain without doc: status %d", code)
	}
	if code := do(t, http.MethodPost, ts.URL+"/query?explain=2",
		queryRequest{Query: `1`, Doc: "hello"}, &errResp); code != http.StatusBadRequest {
		t.Fatalf("explain=2: status %d", code)
	}
}

// putHelloDoc ingests the small two-hierarchy hello/world fixture.
func putHelloDoc(t *testing.T, ts *httptest.Server, name string) {
	t.Helper()
	putTestDoc(t, ts.URL, name,
		`<r><page>Hello wo</page><page>rld</page></r>`,
		`<r><w>Hello</w> <w>world</w></r>`)
}

// rawQuery posts a query body and returns the raw response.
func rawQuery(t *testing.T, ts *httptest.Server, path string, body any) (*http.Response, string) {
	t.Helper()
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(body); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+path, "application/json", &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	if _, err := io.Copy(&sb, resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, sb.String()
}

func TestServerStreamNDJSON(t *testing.T) {
	ts := newTestServer(t)
	putHelloDoc(t, ts, "a")
	putHelloDoc(t, ts, "b")

	// Single-document stream: one NDJSON row per item.
	resp, body := rawQuery(t, ts, "/query?stream=1", queryRequest{Query: `/descendant::w`, Doc: "a"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	lines := strings.Split(strings.TrimSpace(body), "\n")
	if len(lines) != 2 {
		t.Fatalf("want 2 rows, got %d: %q", len(lines), body)
	}
	var row streamRow
	if err := json.Unmarshal([]byte(lines[0]), &row); err != nil {
		t.Fatal(err)
	}
	if row.Doc != "a" || row.Item != "<w>Hello</w>" {
		t.Fatalf("row = %+v", row)
	}

	// Collection-wide stream with a limit: rows come in name order and
	// stop at the limit.
	resp, body = rawQuery(t, ts, "/query?stream=1&limit=3", queryRequest{Query: `/descendant::w/string(.)`, Format: "text"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status %d", resp.StatusCode)
	}
	lines = strings.Split(strings.TrimSpace(body), "\n")
	if len(lines) != 3 {
		t.Fatalf("want 3 rows, got %d: %q", len(lines), body)
	}
	var docs, items []string
	for _, ln := range lines {
		var r streamRow
		if err := json.Unmarshal([]byte(ln), &r); err != nil {
			t.Fatal(err)
		}
		docs = append(docs, r.Doc)
		items = append(items, r.Item)
	}
	if got := strings.Join(docs, ","); got != "a,a,b" {
		t.Fatalf("docs = %s", got)
	}
	if got := strings.Join(items, ","); got != "Hello,world,Hello" {
		t.Fatalf("items = %s", got)
	}
}

func TestServerQueryLimit(t *testing.T) {
	ts := newTestServer(t)
	putHelloDoc(t, ts, "a")
	putHelloDoc(t, ts, "b")

	// Doc-targeted limit.
	var resp queryResponse
	if status := do(t, "POST", ts.URL+"/query?limit=1", queryRequest{Query: `/descendant::w`, Doc: "a"}, &resp); status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	if got := resultOf(resp.Results[0]); got != "<w>Hello</w>" {
		t.Fatalf("limited result = %q", got)
	}

	// Collection-wide limit: the budget is spent in name order.
	resp = queryResponse{}
	if status := do(t, "POST", ts.URL+"/query?limit=3", queryRequest{Query: `/descendant::w/string(.)`, Format: "text"}, &resp); status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	if len(resp.Results) != 2 {
		t.Fatalf("results = %+v", resp.Results)
	}
	if a, b := resultOf(resp.Results[0]), resultOf(resp.Results[1]); a != "Hello world" || b != "Hello" {
		t.Fatalf("limited fan-out = %q / %q", a, b)
	}
}

// TestServerQueryBodyTooLarge exercises the MaxBytesReader cap on
// /query bodies.
func TestServerQueryBodyTooLarge(t *testing.T) {
	coll, err := openCollection("", mhxquery.CollectionOptions{}, false)
	if err != nil {
		t.Fatal(err)
	}
	s := &server{coll: coll, maxBody: 256, logger: discardLogger()}
	ts := httptest.NewServer(s.routes())
	t.Cleanup(ts.Close)

	big := queryRequest{Query: "count(/descendant::" + strings.Repeat("x", 1024) + ")"}
	resp, _ := rawQuery(t, ts, "/query", big)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413", resp.StatusCode)
	}
}

// TestServerQueryTimeout exercises the -timeout evaluation deadline:
// an effectively unbounded query must be cut off with 504, not pin the
// handler.
func TestServerQueryTimeout(t *testing.T) {
	coll, err := openCollection("", mhxquery.CollectionOptions{}, false)
	if err != nil {
		t.Fatal(err)
	}
	s := &server{coll: coll, timeout: 50 * time.Millisecond, logger: discardLogger()}
	ts := httptest.NewServer(s.routes())
	t.Cleanup(ts.Close)
	putHelloDoc(t, ts, "a")

	start := time.Now()
	resp, body := rawQuery(t, ts, "/query", queryRequest{Query: `count(1 to 100000000000)`, Doc: "a"})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d (%s), want 504", resp.StatusCode, body)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("timeout took %v", elapsed)
	}

	// A bare range (no aggregating loop) must be cut off too — the
	// drain itself polls the deadline.
	resp, body = rawQuery(t, ts, "/query", queryRequest{Query: `1 to 100000000000`, Doc: "a"})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("bare range: status %d (%s), want 504", resp.StatusCode, body)
	}

	// A timed-out collection fan-out is a 504, not a 200 with per-row
	// error strings.
	resp, body = rawQuery(t, ts, "/query", queryRequest{Query: `count(1 to 100000000000)`})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("fan-out: status %d (%s), want 504", resp.StatusCode, body)
	}

	// Mid-stream expiry ends the NDJSON stream with an error row.
	resp, body = rawQuery(t, ts, "/query?stream=1", queryRequest{Query: `count(1 to 100000000000)`, Doc: "a"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status %d", resp.StatusCode)
	}
	var last streamRow
	lines := strings.Split(strings.TrimSpace(body), "\n")
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &last); err != nil {
		t.Fatal(err)
	}
	if last.Error == "" {
		t.Fatalf("want error row, got %q", body)
	}
}

// TestServerStreamErrorsBeforeBody: errors detectable before any item
// is produced keep their HTTP status in stream mode.
func TestServerStreamErrorsBeforeBody(t *testing.T) {
	ts := newTestServer(t)
	putHelloDoc(t, ts, "a")

	resp, _ := rawQuery(t, ts, "/query?stream=1", queryRequest{Query: `((`, Doc: "a"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad query: status %d, want 400", resp.StatusCode)
	}
	resp, _ = rawQuery(t, ts, "/query?stream=1", queryRequest{Query: `//w`, Doc: "nope"})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown doc: status %d, want 404", resp.StatusCode)
	}
}

func TestServerUpdate(t *testing.T) {
	dir := t.TempDir()
	coll, err := openCollection(dir, mhxquery.CollectionOptions{}, true)
	if err != nil {
		t.Fatal(err)
	}
	s := &server{coll: coll, logger: discardLogger()}
	ts := httptest.NewServer(s.routes())
	defer ts.Close()

	countDmg := func() string {
		var qr queryResponse
		if code := do(t, http.MethodPost, ts.URL+"/query",
			queryRequest{Query: `count(//dmg)`, Doc: "boethius"}, &qr); code != http.StatusOK {
			t.Fatalf("query: status %d", code)
		}
		return resultOf(qr.Results[0])
	}
	before := countDmg()

	// PATCH /docs/{name} applies an update and reports the new version.
	var ur updateResponse
	if code := do(t, http.MethodPatch, ts.URL+"/docs/boethius",
		updateRequest{Update: `delete node (//dmg)[1]`}, &ur); code != http.StatusOK {
		t.Fatalf("PATCH: status %d", code)
	}
	if ur.Version != 1 || ur.Stats.Edits != 1 || ur.Stats.HierarchiesCopied != 1 {
		t.Fatalf("PATCH response = %+v", ur)
	}
	after := countDmg()
	if before == after {
		t.Fatalf("count(//dmg) unchanged: %s", after)
	}

	// POST /update is the body-addressed form.
	ur = updateResponse{}
	if code := do(t, http.MethodPost, ts.URL+"/update",
		updateRequest{Doc: "boethius", Update: `rename node //dmg as "worm"`}, &ur); code != http.StatusOK {
		t.Fatalf("POST /update: status %d", code)
	}
	if ur.Version != 2 {
		t.Fatalf("version = %d, want 2", ur.Version)
	}

	// Errors: unknown doc is 404, bad expression 400, missing doc 400.
	var er errorResponse
	if code := do(t, http.MethodPost, ts.URL+"/update",
		updateRequest{Doc: "nope", Update: `delete node //w`}, &er); code != http.StatusNotFound {
		t.Fatalf("unknown doc: status %d (%+v)", code, er)
	}
	if code := do(t, http.MethodPatch, ts.URL+"/docs/boethius",
		updateRequest{Update: `rename node`}, &er); code != http.StatusBadRequest {
		t.Fatalf("bad expression: status %d", code)
	}
	if code := do(t, http.MethodPost, ts.URL+"/update",
		updateRequest{Update: `delete node //w`}, &er); code != http.StatusBadRequest {
		t.Fatalf("missing doc: status %d", code)
	}

	// Updated versions are persisted: a fresh server over the same
	// directory sees the renamed hierarchy content.
	ts.Close()
	coll.Close()
	coll2, err := openCollection(dir, mhxquery.CollectionOptions{}, false)
	if err != nil {
		t.Fatal(err)
	}
	s2 := &server{coll: coll2, logger: discardLogger()}
	ts2 := httptest.NewServer(s2.routes())
	defer ts2.Close()
	var qr queryResponse
	if code := do(t, http.MethodPost, ts2.URL+"/query",
		queryRequest{Query: `count(//worm)`, Doc: "boethius"}, &qr); code != http.StatusOK {
		t.Fatalf("reopened query: status %d", code)
	}
	if resultOf(qr.Results[0]) != "1" {
		t.Fatalf("reopened count(//worm) = %s", resultOf(qr.Results[0]))
	}
}
