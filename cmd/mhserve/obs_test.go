package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"mhxquery"
)

// scrape fetches /metrics and returns the parsed samples: every
// non-comment line as name{labels} -> value. It fails the test on any
// line that does not parse as Prometheus text format.
func scrape(t *testing.T, base string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("GET /metrics: content type %q", ct)
	}
	out := map[string]float64{}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	// Label values may themselves contain '}' (e.g. route="/docs/{name}"),
	// so the label block is matched greedily.
	sampleRE := regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{.*\})? `)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !sampleRE.MatchString(line) {
			t.Fatalf("unparseable metrics line %q", line)
		}
		sp := strings.LastIndexByte(line, ' ')
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		out[line[:sp]] = v
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestMetricsEndpoint drives a query burst and checks the scrape:
// catalog coverage, counter monotonicity across scrapes, and the
// histogram invariants (cumulative buckets, +Inf == _count).
func TestMetricsEndpoint(t *testing.T) {
	ts := newTestServer(t)
	putTestDoc(t, ts.URL, "hello",
		`<r><page>Hello wo</page><page>rld</page></r>`,
		`<r><w>Hello</w> <w>world</w></r>`)

	var qr queryResponse
	for i := 0; i < 3; i++ {
		if code := do(t, http.MethodPost, ts.URL+"/query",
			queryRequest{Query: `count(//w)`, Doc: "hello"}, &qr); code != http.StatusOK {
			t.Fatalf("query %d: status %d", i, code)
		}
	}

	first := scrape(t, ts.URL)
	for _, want := range []string{
		"mhx_query_seconds_count",
		`mhx_cache_requests_total{cache="compile",result="hit"}`,
		`mhx_cache_requests_total{cache="plan",result="hit"}`,
		"mhx_nameindex_builds_total",
		"mhx_fanout_queue_depth",
		"mhx_update_commit_seconds_count",
		"mhx_documents",
	} {
		if _, ok := first[want]; !ok {
			t.Errorf("scrape missing %s", want)
		}
	}
	if first["mhx_query_seconds_count"] < 3 {
		t.Errorf("query count = %v, want >= 3", first["mhx_query_seconds_count"])
	}

	// Histogram invariants: buckets are cumulative and +Inf equals the
	// count for every histogram child in the scrape.
	type bucket struct {
		le  float64
		val float64
	}
	hists := map[string][]bucket{}
	leRE := regexp.MustCompile(`^(.*)_bucket\{(?:(.*),)?le="([^"]+)"\}$`)
	for k, v := range first {
		m := leRE.FindStringSubmatch(k)
		if m == nil {
			continue
		}
		le := 0.0
		if m[3] == "+Inf" {
			le = 1e308
		} else {
			le, _ = strconv.ParseFloat(m[3], 64)
		}
		key := m[1] + "{" + m[2] + "}"
		hists[key] = append(hists[key], bucket{le: le, val: v})
	}
	if len(hists) == 0 {
		t.Fatal("no histogram buckets in scrape")
	}
	for name, bs := range hists {
		for i := range bs {
			for j := range bs {
				if bs[i].le < bs[j].le && bs[i].val > bs[j].val {
					t.Errorf("%s: bucket le=%g count %g exceeds le=%g count %g (not cumulative)",
						name, bs[i].le, bs[i].val, bs[j].le, bs[j].val)
				}
			}
		}
	}
	if inf, cnt := first[`mhx_query_seconds_bucket{le="+Inf"}`], first["mhx_query_seconds_count"]; inf != cnt {
		t.Errorf("+Inf bucket %v != count %v", inf, cnt)
	}

	// Monotonicity: another burst strictly grows the counters.
	if code := do(t, http.MethodPost, ts.URL+"/query",
		queryRequest{Query: `count(//w)`, Doc: "hello"}, &qr); code != http.StatusOK {
		t.Fatalf("second burst: status %d", code)
	}
	second := scrape(t, ts.URL)
	if second["mhx_query_seconds_count"] <= first["mhx_query_seconds_count"] {
		t.Errorf("query count did not grow: %v -> %v",
			first["mhx_query_seconds_count"], second["mhx_query_seconds_count"])
	}
	if second[`mhserve_http_requests_total{route="/query",status="200"}`] <=
		first[`mhserve_http_requests_total{route="/query",status="200"}`] {
		t.Errorf("http request counter did not grow")
	}
	for k, v := range first {
		if strings.Contains(k, "_total") || strings.HasSuffix(k, "_count") {
			if second[k] < v {
				t.Errorf("counter %s went backwards: %v -> %v", k, v, second[k])
			}
		}
	}
}

// TestAnalyzeParam checks POST /query?analyze=1: the response plan
// carries observed wall time, and its cardinalities match a static
// EXPLAIN of the same query.
func TestAnalyzeParam(t *testing.T) {
	ts := newTestServer(t)
	putTestDoc(t, ts.URL, "hello",
		`<r><page>Hello wo</page><page>rld</page></r>`,
		`<r><w>Hello</w> <w>world</w></r>`)

	req := queryRequest{Query: `for $w in //w return string($w)`, Doc: "hello"}
	var explained, analyzed queryResponse
	if code := do(t, http.MethodPost, ts.URL+"/query?explain=1", req, &explained); code != http.StatusOK {
		t.Fatalf("explain: status %d", code)
	}
	if code := do(t, http.MethodPost, ts.URL+"/query?analyze=1", req, &analyzed); code != http.StatusOK {
		t.Fatalf("analyze: status %d", code)
	}
	if analyzed.Plan == nil || explained.Plan == nil {
		t.Fatal("missing plan in explain/analyze response")
	}
	if analyzed.Plan.Nanos <= 0 {
		t.Errorf("analyzed root Nanos = %d, want > 0", analyzed.Plan.Nanos)
	}
	if resultOf(analyzed.Results[0]) != resultOf(explained.Results[0]) {
		t.Errorf("results diverge: %q vs %q", resultOf(analyzed.Results[0]), resultOf(explained.Results[0]))
	}
	// Same query, same doc: the analyzed tree's cardinalities must match
	// static EXPLAIN's.
	comparePlans(t, explained.Plan, analyzed.Plan, "")
	// Analyze without a doc, or with stream, is rejected.
	var er errorResponse
	if code := do(t, http.MethodPost, ts.URL+"/query?analyze=1",
		queryRequest{Query: `1`, Collection: "*"}, &er); code != http.StatusBadRequest {
		t.Errorf("analyze without doc: status %d", code)
	}
	if code := do(t, http.MethodPost, ts.URL+"/query?analyze=1&stream=1", req, &er); code != http.StatusBadRequest {
		t.Errorf("analyze+stream: status %d", code)
	}
}

// TestSlowQueryLog checks the -slow-query path end to end: with a
// 1ns threshold every doc query is "slow", and the log line carries the
// trace ID, the query and the analyzed plan.
func TestSlowQueryLog(t *testing.T) {
	var buf syncBuffer
	coll, err := openCollection("", mhxquery.CollectionOptions{}, false)
	if err != nil {
		t.Fatal(err)
	}
	s := &server{coll: coll, slow: time.Nanosecond,
		logger: slog.New(slog.NewJSONHandler(&buf, nil))}
	ts := httptest.NewServer(s.routes())
	t.Cleanup(ts.Close)

	putTestDoc(t, ts.URL, "hello",
		`<r><page>Hello wo</page><page>rld</page></r>`,
		`<r><w>Hello</w> <w>world</w></r>`)

	req, err := http.NewRequest(http.MethodPost, ts.URL+"/query",
		strings.NewReader(`{"query":"count(//w)","doc":"hello"}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Trace-Id", "feedfacecafebeef")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query: status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Trace-Id"); got != "feedfacecafebeef" {
		t.Errorf("trace header not echoed: %q", got)
	}

	var slow map[string]any
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("unparseable log line %q: %v", line, err)
		}
		if rec["msg"] == "slow query" {
			slow = rec
		}
	}
	if slow == nil {
		t.Fatalf("no slow-query log line in:\n%s", buf.String())
	}
	if slow["trace"] != "feedfacecafebeef" {
		t.Errorf("slow-query trace = %v", slow["trace"])
	}
	if slow["query"] != "count(//w)" || slow["doc"] != "hello" {
		t.Errorf("slow-query identifies %v / %v", slow["doc"], slow["query"])
	}
	plan, ok := slow["plan"].(map[string]any)
	if !ok {
		t.Fatalf("slow-query log has no analyzed plan: %v", slow)
	}
	if op, _ := plan["op"].(string); op != "query" {
		t.Errorf("plan root op = %v", plan["op"])
	}
	if nanos, _ := plan["nanos"].(float64); nanos <= 0 {
		t.Errorf("plan root nanos = %v, want > 0 (analyzed, not static)", plan["nanos"])
	}
}

// TestReadyzDrain checks the readiness flip: 200 while serving, 503
// once draining starts.
func TestReadyzDrain(t *testing.T) {
	ts, s := newTestServerWith(t, 0)
	var body map[string]any
	if code := do(t, http.MethodGet, ts.URL+"/readyz", nil, &body); code != http.StatusOK {
		t.Fatalf("readyz while serving: status %d", code)
	}
	s.draining.Store(true)
	if code := do(t, http.MethodGet, ts.URL+"/readyz", nil, &body); code != http.StatusServiceUnavailable {
		t.Fatalf("readyz while draining: status %d", code)
	}
	if body["status"] != "draining" {
		t.Errorf("readyz body = %v", body)
	}
	// Liveness is unaffected by draining.
	if code := do(t, http.MethodGet, ts.URL+"/healthz", nil, &body); code != http.StatusOK {
		t.Fatalf("healthz while draining: status %d", code)
	}
}

// TestReadyzRecovering checks the startup side of readiness: while the
// collection is still opening (WAL replay), /readyz and collection
// endpoints answer 503 and /healthz stays alive; once the collection
// is published everything flips to serving.
func TestReadyzRecovering(t *testing.T) {
	s := &server{logger: discardLogger()} // coll nil: still recovering
	ts := httptest.NewServer(s.routes())
	t.Cleanup(ts.Close)

	var body map[string]any
	if code := do(t, http.MethodGet, ts.URL+"/readyz", nil, &body); code != http.StatusServiceUnavailable {
		t.Fatalf("readyz while recovering: status %d", code)
	}
	if body["status"] != "recovering" {
		t.Errorf("readyz body = %v", body)
	}
	if code := do(t, http.MethodGet, ts.URL+"/docs", nil, &body); code != http.StatusServiceUnavailable {
		t.Fatalf("GET /docs while recovering: status %d", code)
	}
	if code := do(t, http.MethodGet, ts.URL+"/healthz", nil, &body); code != http.StatusOK {
		t.Fatalf("healthz while recovering: status %d", code)
	}
	if body["status"] != "recovering" {
		t.Errorf("healthz body = %v", body)
	}

	coll, err := openCollection("", mhxquery.CollectionOptions{}, false)
	if err != nil {
		t.Fatal(err)
	}
	s.coll = coll
	s.ready.Store(true)
	if code := do(t, http.MethodGet, ts.URL+"/readyz", nil, &body); code != http.StatusOK {
		t.Fatalf("readyz after recovery: status %d", code)
	}
	if code := do(t, http.MethodGet, ts.URL+"/docs", nil, &body); code != http.StatusOK {
		t.Fatalf("GET /docs after recovery: status %d", code)
	}
}

// TestTraceIDGenerated: a request without a trace header gets one
// assigned and echoed.
func TestTraceIDGenerated(t *testing.T) {
	ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get("X-Trace-Id"); !regexp.MustCompile(`^[0-9a-f]{16}$`).MatchString(got) {
		t.Errorf("generated trace ID = %q", got)
	}
}

// comparePlans asserts the analyzed plan is the same operator tree,
// with the same observed cardinalities, as the static explain.
func comparePlans(t *testing.T, a, b *mhxquery.PlanOp, path string) {
	t.Helper()
	p := path + "/" + a.Op
	if a.Op != b.Op || a.Detail != b.Detail {
		t.Fatalf("plan shape diverged at %s: %s/%s vs %s/%s", p, a.Op, a.Detail, b.Op, b.Detail)
	}
	if a.Calls != b.Calls || a.InRows != b.InRows || a.OutRows != b.OutRows {
		t.Errorf("cardinalities diverged at %s: explain {%d %d %d} analyze {%d %d %d}",
			p, a.Calls, a.InRows, a.OutRows, b.Calls, b.InRows, b.OutRows)
	}
	if len(a.Children) != len(b.Children) {
		t.Fatalf("child count diverged at %s", p)
	}
	for i := range a.Children {
		comparePlans(t, a.Children[i], b.Children[i], p)
	}
}

// discardLogger silences the request log for tests that build a server
// literal directly.
func discardLogger() *slog.Logger {
	return slog.New(slog.NewJSONHandler(io.Discard, nil))
}

// syncBuffer is a goroutine-safe bytes.Buffer for capturing logs.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (sb *syncBuffer) Write(p []byte) (int, error) {
	sb.mu.Lock()
	defer sb.mu.Unlock()
	return sb.b.Write(p)
}

func (sb *syncBuffer) String() string {
	sb.mu.Lock()
	defer sb.mu.Unlock()
	return sb.b.String()
}
