// Command mhserve serves a collection of multihierarchical documents
// over HTTP: ingest document hierarchies, list the corpus, and evaluate
// extended-XQuery expressions against one document or fanned out across
// the whole collection.
//
// Usage:
//
//	mhserve [-addr :8080] [-dir corpus/] [-workers N] [-cache N] [-boethius] [-pprof addr]
//
// With -pprof a second listener exposes net/http/pprof (live CPU, heap
// and goroutine profiles of the query hot paths) on a separate address,
// so profiling is never reachable through the public serving port:
//
//	mhserve -boethius -pprof localhost:6060 &
//	curl -o cpu.out 'http://localhost:6060/debug/pprof/profile?seconds=10'
//	go tool pprof cpu.out
//
// With -dir the corpus directory is loaded at startup and kept durable
// with a per-collection write-ahead log: updates append to wal.log and
// are fsynced (group commit, bounded by -wal-flush) before the HTTP
// response acknowledges them, while whole document images are written
// in the background (every -snapshot-every updates or -snapshot-bytes
// logged bytes per document). A restart replays the log, so every
// acknowledged update survives a crash; -write-through restores the
// pre-WAL behavior of persisting a full image synchronously on each
// update. The collection opens (and replays) in the background:
// /readyz answers 503 {"status":"recovering"} and collection endpoints
// 503 until replay finishes. With -boethius the paper's Figure 1
// fixture is preloaded under the name "boethius".
//
// Endpoints (all JSON unless noted):
//
//	GET    /healthz      liveness + corpus size
//	GET    /readyz       readiness; 503 once graceful shutdown starts draining
//	GET    /metrics      Prometheus text format: engine metrics (query
//	                     latency, cache hit/miss, fan-out, name index)
//	                     plus HTTP request series
//	GET    /docs         list documents with stats
//	PUT    /docs/{name}  ingest {"hierarchies":[{"name":..,"xml":..,"dtd":..}]}
//	GET    /docs/{name}  one document's stats
//	DELETE /docs/{name}  remove a document
//	PATCH  /docs/{name}  apply an update expression {"update":".."} — the
//	                     document is edited copy-on-write: a new version
//	                     is published (and persisted) while queries
//	                     already running keep their snapshot
//	POST   /query        {"query":.., "doc":"name" | "collection":"glob", "format":"xml"|"text"}
//	POST   /update       {"doc":"name", "update":".."} — body-addressed
//	                     form of PATCH /docs/{name}
//
// POST /query accepts two query parameters that expose the cursor
// engine's streaming execution:
//
//   - ?limit=N bounds the result to N items. Evaluation stops once the
//     limit is produced (O(answer), not O(document)): single-document
//     queries stream and stop, collection fan-outs cap every row and
//     truncate to the global budget in document name order.
//   - ?stream=1 switches the response to NDJSON (application/x-ndjson):
//     one JSON object {"doc":..,"item":..} per result item, written and
//     flushed as it is produced, with {"doc":..,"error":..} rows for
//     per-document failures. Collection-wide streams evaluate documents
//     one at a time in name order, so server memory stays bounded by a
//     single item regardless of result size.
//
// POST /query?explain=1 additionally returns the physical operator tree
// of the evaluation — the whole lowered query (FLWOR clauses,
// predicates, calls), index-vs-axis decisions and per-operator
// cardinalities — under "plan". ?analyze=1 upgrades that to EXPLAIN
// ANALYZE: the tree also carries observed per-operator wall time
// ("nanos", inclusive of children; the root is total query time). Both
// require a single target document ("doc") and are incompatible with
// ?stream=1.
//
// Every request carries a trace ID: the X-Trace-Id request header is
// honored when present, generated otherwise, echoed on the response and
// logged in the structured JSON request log (one line per request on
// stderr). With -slow-query DURATION, single-document queries run
// instrumented and any query at or over the threshold is logged with
// its trace ID and analyzed plan.
//
// Query evaluation is bounded: request bodies beyond -max-body bytes
// are rejected with 413, and -timeout caps wall-clock evaluation time
// per request (504 on expiry; mid-stream expiry ends the NDJSON stream
// with an error row).
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"sync/atomic"
	"syscall"
	"time"

	"mhxquery"
	"mhxquery/internal/corpus"
)

// maxBodyBytes bounds ingest and query request bodies.
const maxBodyBytes = 32 << 20

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	dir := flag.String("dir", "", "corpus directory (loaded at startup, written through on ingest; empty = memory-only)")
	workers := flag.Int("workers", 0, "fan-out worker pool size (0 = GOMAXPROCS)")
	queryWorkers := flag.Int("query-workers", 0, "per-query morsel-execution workers, drawn from the shared pool (0 = GOMAXPROCS, 1 = serial)")
	cache := flag.Int("cache", 0, "compiled-query cache entries (0 = 128, negative = disabled)")
	boethius := flag.Bool("boethius", false, "preload the paper's Figure 1 fixture as \"boethius\"")
	pprofAddr := flag.String("pprof", "", "listen address for net/http/pprof (e.g. localhost:6060; empty = disabled)")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request query evaluation timeout (0 = unlimited)")
	maxBody := flag.Int64("max-body", maxBodyBytes, "maximum request body size in bytes")
	slowQuery := flag.Duration("slow-query", 0, "log single-document queries slower than this with their analyzed plan (0 = disabled; enabling runs doc queries instrumented)")
	drain := flag.Duration("drain", 10*time.Second, "graceful-shutdown drain timeout for in-flight requests")
	walFlush := flag.Duration("wal-flush", 0, "WAL group-commit window: extra latency a commit may wait to share an fsync with its neighbors (0 = flush immediately)")
	snapEvery := flag.Int("snapshot-every", 0, "write a background document snapshot after this many logged updates (0 = default 256, negative = never)")
	snapBytes := flag.Int64("snapshot-bytes", 0, "write a background document snapshot after this many logged bytes (0 = default 4MiB, negative = never)")
	writeThrough := flag.Bool("write-through", false, "disable the write-ahead log and persist a full document image synchronously on every update")
	mmap := flag.Bool("mmap", true, "memory-map v3 snapshot images on startup (lazy, zero-copy open); -mmap=false reads them into memory instead")
	flag.Parse()

	logger := slog.New(slog.NewJSONHandler(os.Stderr, nil))

	mhxquery.SetQueryWorkers(*queryWorkers)

	opts := mhxquery.CollectionOptions{
		Workers:       *workers,
		CacheSize:     *cache,
		WriteThrough:  *writeThrough,
		FlushWindow:   *walFlush,
		SnapshotEvery: *snapEvery,
		SnapshotBytes: *snapBytes,
		NoMmap:        !*mmap,
	}
	if *pprofAddr != "" {
		// The profiling handlers get a private mux registered explicitly,
		// so nothing a dependency drops onto the DefaultServeMux can ever
		// leak onto the profiling port (or vice versa).
		pm := http.NewServeMux()
		pm.HandleFunc("/debug/pprof/", pprof.Index)
		pm.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pm.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pm.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pm.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			log.Printf("mhserve: pprof listening on %s", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, pm); err != nil {
				log.Printf("mhserve: pprof listener: %v", err)
			}
		}()
	}
	s := &server{timeout: *timeout, maxBody: *maxBody, slow: *slowQuery, logger: logger}
	srv := &http.Server{
		Addr:    *addr,
		Handler: s.routes(),
		// Coarse bounds so slow or stalled clients cannot pin
		// goroutines and file descriptors indefinitely.
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       5 * time.Minute,
		WriteTimeout:      5 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	log.Printf("mhserve: listening on %s", *addr)

	// Serve until SIGINT/SIGTERM, then drain: /readyz flips to 503 so
	// load balancers stop sending work, Shutdown lets in-flight requests
	// finish within the drain timeout, and only then does the process
	// exit (previously it died mid-request).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 2)
	// The collection opens (and replays its write-ahead log) in the
	// background so the listener binds immediately; /readyz flips from
	// 503 {"status":"recovering"} to 200 once replay finishes. An open
	// failure is fatal, surfaced through the same error channel as the
	// listener's.
	go func() {
		start := time.Now()
		coll, err := openCollection(*dir, opts, *boethius)
		if err != nil {
			errc <- fmt.Errorf("opening collection: %w", err)
			return
		}
		s.coll = coll
		s.ready.Store(true)
		rec := coll.Recovery()
		logger.Info("collection ready",
			"docs", coll.Len(),
			"elapsed", time.Since(start).String(),
			"snapshots_loaded", rec.Snapshots,
			"wal_replayed", rec.Replayed,
			"wal_skipped", rec.Skipped,
			"wal_tombstones", rec.Tombstones,
			"wal_torn_tail_bytes", rec.TornTailBytes,
			"checkpointed_docs", rec.CheckpointDocs)
	}()
	go func() { errc <- srv.ListenAndServe() }()
	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "mhserve:", err)
			os.Exit(1)
		}
	case <-ctx.Done():
		stop()
		s.draining.Store(true)
		logger.Info("shutdown: draining in-flight requests", "timeout", drain.String())
		shCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(shCtx); err != nil {
			logger.Warn("shutdown: drain timeout expired, closing", "err", err.Error())
			srv.Close()
		}
		logger.Info("shutdown: done")
	}
}

func openCollection(dir string, opts mhxquery.CollectionOptions, boethius bool) (*mhxquery.Collection, error) {
	var (
		coll *mhxquery.Collection
		err  error
	)
	if dir != "" {
		coll, err = mhxquery.OpenCollection(dir, opts)
		if err != nil {
			return nil, err
		}
	} else {
		coll = mhxquery.NewCollection(opts)
	}
	if boethius {
		xml := corpus.BoethiusXML()
		var hs []mhxquery.Hierarchy
		for _, name := range corpus.BoethiusHierarchies() {
			hs = append(hs, mhxquery.Hierarchy{Name: name, XML: xml[name]})
		}
		d, err := mhxquery.Parse(hs...)
		if err != nil {
			return nil, err
		}
		if _, err := coll.Put("boethius", d); err != nil {
			return nil, err
		}
	}
	return coll, nil
}

// server is the HTTP layer over a document collection.
type server struct {
	coll *mhxquery.Collection
	// timeout caps query evaluation wall-clock time per request
	// (0 = unlimited); the cursor engine polls the deadline between
	// items, so even pathological queries stop promptly.
	timeout time.Duration
	// maxBody caps request bodies (MaxBytesReader).
	maxBody int64
	// slow is the slow-query log threshold (0 = disabled). When set,
	// single-document queries run instrumented (EXPLAIN ANALYZE) so a
	// slow one can be logged with its analyzed plan.
	slow time.Duration
	// logger emits the structured request and slow-query logs; routes()
	// defaults it when nil so a zero-value server still works.
	logger *slog.Logger
	// httpM is the transport-level metrics registry (obs.go).
	httpM *httpMetrics
	// draining flips once graceful shutdown begins; /readyz then serves
	// 503 while in-flight requests finish.
	draining atomic.Bool
	// ready flips once the collection has finished opening (write-ahead
	// log replay included). Until then coll is nil: /readyz reports
	// "recovering" and every collection endpoint answers 503. The
	// atomic store publishes the coll write that precedes it.
	ready atomic.Bool
}

func (s *server) routes() http.Handler {
	if s.logger == nil {
		s.logger = slog.New(slog.NewJSONHandler(os.Stderr, nil))
	}
	if s.httpM == nil {
		s.httpM = newHTTPMetrics()
	}
	if s.coll != nil {
		// Constructed with the collection already open (tests, embedders):
		// no recovery phase to wait out.
		s.ready.Store(true)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /docs", s.handleListDocs)
	mux.HandleFunc("PUT /docs/{name}", s.handlePutDoc)
	mux.HandleFunc("GET /docs/{name}", s.handleGetDoc)
	mux.HandleFunc("DELETE /docs/{name}", s.handleDeleteDoc)
	mux.HandleFunc("PATCH /docs/{name}", s.handlePatchDoc)
	mux.HandleFunc("POST /query", s.handleQuery)
	mux.HandleFunc("POST /update", s.handleUpdate)
	return s.withObs(s.gate(mux))
}

// gate refuses collection endpoints with 503 while the collection is
// still opening (write-ahead log replay). /healthz and /readyz pass
// through: their handlers report the recovering state themselves.
func (s *server) gate(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !s.ready.Load() && r.URL.Path != "/healthz" && r.URL.Path != "/readyz" {
			writeError(w, http.StatusServiceUnavailable, "recovering: write-ahead log replay in progress")
			return
		}
		h.ServeHTTP(w, r)
	})
}

// ---- JSON wire types -------------------------------------------------------

type hierarchyJSON struct {
	Name string `json:"name"`
	XML  string `json:"xml"`
	DTD  string `json:"dtd,omitempty"`
}

type putDocRequest struct {
	Hierarchies []hierarchyJSON `json:"hierarchies"`
}

type docInfo struct {
	Name        string         `json:"name"`
	Hierarchies []string       `json:"hierarchies"`
	TextBytes   int            `json:"text_bytes"`
	Stats       mhxquery.Stats `json:"stats"`
}

type queryRequest struct {
	// Query is the extended-XQuery source.
	Query string `json:"query"`
	// Doc targets a single document by name. Empty = collection-wide.
	Doc string `json:"doc,omitempty"`
	// Collection restricts a collection-wide query to names matching
	// this glob. Ignored when Doc is set.
	Collection string `json:"collection,omitempty"`
	// Format selects result serialization: "xml" (default) or "text".
	Format string `json:"format,omitempty"`
}

type queryResult struct {
	Doc string `json:"doc"`
	// Result is always present on success (even when empty), so clients
	// can distinguish an empty result from an errored row.
	Result *string `json:"result,omitempty"`
	Error  string  `json:"error,omitempty"`
}

type queryResponse struct {
	Results []queryResult `json:"results"`
	// Plan is the physical operator tree, present only on
	// /query?explain=1 requests.
	Plan *mhxquery.PlanOp `json:"plan,omitempty"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("mhserve: encoding response: %v", err)
	}
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...)})
}

func (s *server) decodeJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	limit := s.maxBody
	if limit <= 0 {
		limit = maxBodyBytes
	}
	r.Body = http.MaxBytesReader(w, r.Body, limit)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var maxErr *http.MaxBytesError
		if errors.As(err, &maxErr) {
			writeError(w, http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", maxErr.Limit)
			return false
		}
		writeError(w, http.StatusBadRequest, "invalid JSON: %v", err)
		return false
	}
	return true
}

// ---- handlers --------------------------------------------------------------

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if !s.ready.Load() {
		// Alive but still replaying the write-ahead log: liveness holds,
		// readiness (readyz) does not.
		writeJSON(w, http.StatusOK, map[string]any{"status": "recovering"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "docs": s.coll.Len()})
}

func (s *server) info(name string, d *mhxquery.Document) docInfo {
	return docInfo{
		Name:        name,
		Hierarchies: d.Hierarchies(),
		TextBytes:   len(d.Text()),
		Stats:       d.Stats(),
	}
}

func (s *server) handleListDocs(w http.ResponseWriter, r *http.Request) {
	infos := []docInfo{} // never null in the JSON, even when empty
	for _, name := range s.coll.Names() {
		if d, ok := s.coll.Get(name); ok {
			infos = append(infos, s.info(name, d))
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"docs": infos, "count": len(infos)})
}

func (s *server) handlePutDoc(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if !mhxquery.ValidDocumentName(name) {
		writeError(w, http.StatusBadRequest, "invalid document name %q", name)
		return
	}
	var req putDocRequest
	if !s.decodeJSON(w, r, &req) {
		return
	}
	if len(req.Hierarchies) == 0 {
		writeError(w, http.StatusBadRequest, "no hierarchies given")
		return
	}
	hs := make([]mhxquery.Hierarchy, len(req.Hierarchies))
	for i, h := range req.Hierarchies {
		hs[i] = mhxquery.Hierarchy{Name: h.Name, XML: h.XML, DTD: h.DTD}
	}
	d, err := mhxquery.Parse(hs...)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// The name and document were validated above, so a Put failure is a
	// server-side persistence problem, not a client error.
	replaced, err := s.coll.Put(name, d)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	status := http.StatusCreated
	if replaced {
		status = http.StatusOK
	}
	writeJSON(w, status, s.info(name, d))
}

func (s *server) handleGetDoc(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	d, ok := s.coll.Get(name)
	if !ok {
		writeError(w, http.StatusNotFound, "no document %q", name)
		return
	}
	writeJSON(w, http.StatusOK, s.info(name, d))
}

func (s *server) handleDeleteDoc(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if _, ok := s.coll.Get(name); !ok {
		writeError(w, http.StatusNotFound, "no document %q", name)
		return
	}
	if err := s.coll.Delete(name); err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// updateRequest is the body of PATCH /docs/{name} and POST /update.
type updateRequest struct {
	// Doc names the target document (POST /update only; the PATCH path
	// takes it from the URL).
	Doc string `json:"doc,omitempty"`
	// Update is the update-expression source.
	Update string `json:"update"`
}

// updateResponse reports an applied update: the new version number,
// the copy-on-write statistics, and the updated document's info.
type updateResponse struct {
	Doc     string               `json:"doc"`
	Version uint64               `json:"version"`
	Stats   mhxquery.UpdateStats `json:"stats"`
	Info    docInfo              `json:"info"`
}

// handlePatchDoc applies an update expression to the document named in
// the URL: PATCH /docs/{name} {"update": "..."}.
func (s *server) handlePatchDoc(w http.ResponseWriter, r *http.Request) {
	var req updateRequest
	if !s.decodeJSON(w, r, &req) {
		return
	}
	if req.Doc != "" {
		writeError(w, http.StatusBadRequest, `"doc" is taken from the URL on PATCH /docs/{name}`)
		return
	}
	s.applyUpdate(w, r, r.PathValue("name"), req.Update)
}

// handleUpdate is the body-addressed form: POST /update
// {"doc": "...", "update": "..."}.
func (s *server) handleUpdate(w http.ResponseWriter, r *http.Request) {
	var req updateRequest
	if !s.decodeJSON(w, r, &req) {
		return
	}
	if req.Doc == "" {
		writeError(w, http.StatusBadRequest, `missing "doc"`)
		return
	}
	s.applyUpdate(w, r, req.Doc, req.Update)
}

func (s *server) applyUpdate(w http.ResponseWriter, r *http.Request, name, src string) {
	if src == "" {
		writeError(w, http.StatusBadRequest, "empty update expression")
		return
	}
	ctx, cancel := s.queryContext(r)
	defer cancel()
	d, stats, err := s.coll.UpdateContext(ctx, name, src)
	if err != nil {
		writeError(w, queryStatus(err), "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, updateResponse{
		Doc:     name,
		Version: d.Version(),
		Stats:   stats,
		Info:    s.info(name, d),
	})
}

// queryParams are the parsed ?limit= / ?stream= / ?explain= /
// ?analyze= query parameters of POST /query.
type queryParams struct {
	limit   int // 0 = unlimited
	stream  bool
	explain bool
	analyze bool
}

func parseQueryParams(r *http.Request) (queryParams, error) {
	var p queryParams
	q := r.URL.Query()
	switch q.Get("explain") {
	case "", "0", "false":
	case "1", "true":
		p.explain = true
	default:
		return p, fmt.Errorf("explain must be 0/1")
	}
	switch q.Get("analyze") {
	case "", "0", "false":
	case "1", "true":
		p.analyze = true
	default:
		return p, fmt.Errorf("analyze must be 0/1")
	}
	switch q.Get("stream") {
	case "", "0", "false":
	case "1", "true":
		p.stream = true
	default:
		return p, fmt.Errorf("stream must be 0/1")
	}
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			return p, fmt.Errorf("limit must be a non-negative integer")
		}
		p.limit = n
	}
	return p, nil
}

// queryContext derives the evaluation context: the request context
// (client disconnects cancel evaluation), bounded by the server's
// query timeout.
func (s *server) queryContext(r *http.Request) (context.Context, context.CancelFunc) {
	if s.timeout > 0 {
		return context.WithTimeout(r.Context(), s.timeout)
	}
	return context.WithCancel(r.Context())
}

// queryStatus maps an evaluation error to an HTTP status.
func queryStatus(err error) int {
	switch {
	case errors.Is(err, mhxquery.ErrDocNotFound):
		return http.StatusNotFound
	case mhxquery.IsCanceled(err):
		return http.StatusGatewayTimeout
	}
	return http.StatusBadRequest
}

func (s *server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if !s.decodeJSON(w, r, &req) {
		return
	}
	if req.Query == "" {
		writeError(w, http.StatusBadRequest, "empty query")
		return
	}
	render := mhxquery.Sequence.String
	switch req.Format {
	case "", "xml":
	case "text":
		render = mhxquery.Sequence.Text
	default:
		writeError(w, http.StatusBadRequest, "unknown format %q (want \"xml\" or \"text\")", req.Format)
		return
	}
	p, err := parseQueryParams(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if (p.explain || p.analyze) && req.Doc == "" {
		writeError(w, http.StatusBadRequest, `explain/analyze requires a single target document ("doc")`)
		return
	}
	if (p.explain || p.analyze) && p.stream {
		writeError(w, http.StatusBadRequest, "explain/analyze and stream are mutually exclusive")
		return
	}
	if req.Doc != "" && req.Collection != "" {
		writeError(w, http.StatusBadRequest, `"doc" and "collection" are mutually exclusive`)
		return
	}
	ctx, cancel := s.queryContext(r)
	defer cancel()

	if p.stream {
		s.streamQuery(ctx, w, &req, p, render)
		return
	}
	if req.Doc != "" {
		s.queryOneDoc(ctx, w, &req, p, render)
		return
	}
	results, err := s.coll.QueryMatchingLimit(ctx, req.Collection, req.Query, p.limit)
	if err != nil {
		writeError(w, queryStatus(err), "%v", err)
		return
	}
	if errors.Is(ctx.Err(), context.DeadlineExceeded) {
		// The request deadline expired mid-fan-out: per-row errors would
		// render as a 200; report the timeout for the whole request.
		// (Plain cancellation means the client went away — nothing we
		// write will be read, so fall through.)
		writeError(w, http.StatusGatewayTimeout, "query timed out after %v", s.timeout)
		return
	}
	resp := queryResponse{Results: make([]queryResult, len(results))}
	for i, res := range results {
		qr := queryResult{Doc: res.Name}
		if res.Err != nil {
			qr.Error = res.Err.Error()
		} else {
			out := render(res.Result)
			qr.Result = &out
		}
		resp.Results[i] = qr
	}
	writeJSON(w, http.StatusOK, resp)
}

// queryOneDoc answers a non-streaming single-document query. With a
// limit the evaluation runs through the document's cursor stream and
// stops at the limit; without one (and for EXPLAIN / EXPLAIN ANALYZE)
// it materializes.
func (s *server) queryOneDoc(ctx context.Context, w http.ResponseWriter, req *queryRequest, p queryParams, render func(mhxquery.Sequence) string) {
	if p.explain && !p.analyze {
		res, plan, err := s.coll.Explain(req.Doc, req.Query)
		if err != nil {
			writeError(w, queryStatus(err), "%v", err)
			return
		}
		out := render(res)
		writeJSON(w, http.StatusOK, queryResponse{
			Results: []queryResult{{Doc: req.Doc, Result: &out}},
			Plan:    plan,
		})
		return
	}
	// ?analyze=1 runs the query timed and returns the analyzed plan.
	// A -slow-query threshold routes plain doc queries through the same
	// instrumented evaluation (auto_explain-style: the plan of a slow
	// query can only be reported if the query ran instrumented), at the
	// documented cost of per-operator timing on those requests.
	if p.analyze || (s.slow > 0 && p.limit == 0) {
		start := time.Now()
		res, plan, err := s.coll.ExplainAnalyze(ctx, req.Doc, req.Query)
		if err != nil {
			writeError(w, queryStatus(err), "%v", err)
			return
		}
		if elapsed := time.Since(start); s.slow > 0 && elapsed >= s.slow {
			s.logSlowQuery(ctx, req.Doc, req.Query, elapsed, plan)
		}
		resp := queryResponse{Results: []queryResult{{Doc: req.Doc}}}
		out := render(res)
		resp.Results[0].Result = &out
		if p.analyze {
			resp.Plan = plan
		}
		writeJSON(w, http.StatusOK, resp)
		return
	}
	// Without a limit the strict evaluator is the faster full drain;
	// with one, the stream stops document evaluation at the limit.
	start := time.Now()
	var res mhxquery.Sequence
	var err error
	if p.limit == 0 {
		res, err = s.coll.QueryContext(ctx, req.Doc, req.Query)
	} else {
		var st *mhxquery.Stream
		if st, err = s.coll.StreamDoc(ctx, req.Doc, req.Query); err == nil {
			res, err = st.Take(p.limit)
		}
	}
	if err != nil {
		writeError(w, queryStatus(err), "%v", err)
		return
	}
	if elapsed := time.Since(start); s.slow > 0 && elapsed >= s.slow {
		// Limited queries run uninstrumented; log without a plan.
		s.logSlowQuery(ctx, req.Doc, req.Query, elapsed, nil)
	}
	out := render(res)
	writeJSON(w, http.StatusOK, queryResponse{
		Results: []queryResult{{Doc: req.Doc, Result: &out}},
	})
}

// streamRow is one NDJSON line of a streaming query response.
type streamRow struct {
	Doc   string `json:"doc"`
	Item  string `json:"item,omitempty"`
	Error string `json:"error,omitempty"`
}

// streamQuery writes the result as NDJSON, one row per item, flushed
// as produced. Evaluation stops as soon as the limit is reached (the
// cursor engine does no further document work) or the client goes
// away.
func (s *server) streamQuery(ctx context.Context, w http.ResponseWriter, req *queryRequest, p queryParams, render func(mhxquery.Sequence) string) {
	// Open the stream before committing a status: compile errors and
	// unknown documents surface synchronously here and deserve the same
	// 400/404 the non-stream path gives. Only evaluation errors found
	// mid-stream become NDJSON error rows.
	var (
		st  *mhxquery.Stream
		cs  *mhxquery.CollectionStream
		err error
	)
	if req.Doc != "" {
		st, err = s.coll.StreamDoc(ctx, req.Doc, req.Query)
	} else {
		cs, err = s.coll.StreamMatching(ctx, req.Collection, req.Query)
	}
	if err != nil {
		writeError(w, queryStatus(err), "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	emit := func(row streamRow) {
		if err := enc.Encode(row); err != nil {
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
	n := 0
	if st != nil {
		for p.limit == 0 || n < p.limit {
			item, ok, err := st.Next()
			if err != nil {
				emit(streamRow{Doc: req.Doc, Error: err.Error()})
				return
			}
			if !ok {
				return
			}
			n++
			emit(streamRow{Doc: req.Doc, Item: render(item)})
		}
		return
	}
	for p.limit == 0 || n < p.limit {
		row, ok := cs.Next()
		if !ok {
			return
		}
		if row.Err != nil {
			emit(streamRow{Doc: row.Doc, Error: row.Err.Error()})
			continue
		}
		n++
		emit(streamRow{Doc: row.Doc, Item: render(row.Item)})
	}
}
