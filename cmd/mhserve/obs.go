package main

// HTTP-layer observability: per-request trace IDs, structured JSON
// request logs, HTTP metrics, the Prometheus /metrics endpoint and the
// slow-query log. The engine-side metrics (query latency, caches,
// fan-out, name index) live in the collection's registry; this file
// adds the server's own registry for transport-level series and writes
// both on a scrape.

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"time"

	"mhxquery"
	"mhxquery/internal/obs"
)

// traceHeader is the request/response header carrying the trace ID.
const traceHeader = "X-Trace-Id"

// traceKey is the context key the trace ID travels under; the same
// context flows into query evaluation (queryContext derives from the
// request context), so the ID a slow-query log line reports is the one
// the evaluation actually ran with.
type traceKey struct{}

// traceID returns the trace ID carried by ctx ("" when absent).
func traceID(ctx context.Context) string {
	id, _ := ctx.Value(traceKey{}).(string)
	return id
}

// newTraceID returns a fresh 16-hex-digit random trace ID.
func newTraceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is a broken platform; a constant ID keeps
		// requests serving rather than panicking in the middleware.
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// httpMetrics is the server's transport-level metric set.
type httpMetrics struct {
	reg *obs.Registry
}

func newHTTPMetrics() *httpMetrics {
	return &httpMetrics{reg: obs.NewRegistry()}
}

// observe records one completed request.
func (m *httpMetrics) observe(route string, status int, d time.Duration) {
	m.reg.Counter("mhserve_http_requests_total",
		"HTTP requests by normalized route and status code.",
		obs.L("route", route), obs.L("status", strconv.Itoa(status))).Inc()
	m.reg.Histogram("mhserve_http_request_seconds",
		"HTTP request duration in seconds by normalized route.",
		obs.LatencyBuckets, obs.L("route", route)).Observe(d.Seconds())
}

// normalizeRoute collapses request paths onto the route patterns of
// routes(), so the route label stays low-cardinality no matter what
// paths clients send. (http.Request.Pattern would do this for us, but
// it needs a newer Go than the module targets.)
func normalizeRoute(path string) string {
	switch path {
	case "/healthz", "/readyz", "/metrics", "/docs", "/query", "/update":
		return path
	}
	if strings.HasPrefix(path, "/docs/") {
		return "/docs/{name}"
	}
	return "other"
}

// statusWriter records the status code and body size written through
// it. It forwards Flush so NDJSON streaming (?stream=1) keeps flushing
// per row through the middleware.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (sw *statusWriter) WriteHeader(status int) {
	if sw.status == 0 {
		sw.status = status
	}
	sw.ResponseWriter.WriteHeader(status)
}

func (sw *statusWriter) Write(p []byte) (int, error) {
	if sw.status == 0 {
		sw.status = http.StatusOK
	}
	n, err := sw.ResponseWriter.Write(p)
	sw.bytes += int64(n)
	return n, err
}

func (sw *statusWriter) Flush() {
	if f, ok := sw.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// withObs wraps the API mux with the observability middleware: assign
// (or honor) the request's trace ID, propagate it through the request
// context into query evaluation, echo it on the response, record the
// request metrics, and emit one structured log line per request.
func (s *server) withObs(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		trace := r.Header.Get(traceHeader)
		if trace == "" {
			trace = newTraceID()
		}
		w.Header().Set(traceHeader, trace)
		r = r.WithContext(context.WithValue(r.Context(), traceKey{}, trace))
		sw := &statusWriter{ResponseWriter: w}
		next.ServeHTTP(sw, r)
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		elapsed := time.Since(start)
		route := normalizeRoute(r.URL.Path)
		s.httpM.observe(route, sw.status, elapsed)
		s.logger.LogAttrs(r.Context(), slog.LevelInfo, "request",
			slog.String("trace", trace),
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.String("route", route),
			slog.Int("status", sw.status),
			slog.Int64("bytes", sw.bytes),
			slog.Duration("duration", elapsed),
		)
	})
}

// handleMetrics serves both registries — the engine's (query latency,
// caches, fan-out, name index) and the server's (HTTP series) — as one
// Prometheus text document.
func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.coll.Metrics().WritePrometheus(w); err != nil {
		return
	}
	s.httpM.reg.WritePrometheus(w)
}

// handleReadyz reports readiness: 503 while the collection is still
// opening (write-ahead log replay after a restart or crash), 200 while
// serving, 503 again once the server starts draining (graceful
// shutdown), so load balancers route work only to a replayed,
// non-draining process.
func (s *server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if !s.ready.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "recovering"})
		return
	}
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok"})
}

// logSlowQuery emits the slow-query log line: the offending query, its
// trace ID, the observed latency and (when the query ran instrumented)
// the analyzed plan.
func (s *server) logSlowQuery(ctx context.Context, doc, query string, elapsed time.Duration, plan *mhxquery.PlanOp) {
	attrs := []slog.Attr{
		slog.String("trace", traceID(ctx)),
		slog.String("doc", doc),
		slog.String("query", query),
		slog.Duration("elapsed", elapsed),
		slog.Duration("threshold", s.slow),
	}
	if plan != nil {
		attrs = append(attrs, slog.Any("plan", plan))
	}
	s.logger.LogAttrs(ctx, slog.LevelWarn, "slow query", attrs...)
}
