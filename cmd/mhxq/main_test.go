package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunBoethius(t *testing.T) {
	if err := run(nil, `count(/descendant::w)`, "", "xml", true, false, false, 0, ""); err != nil {
		t.Fatal(err)
	}
	if err := run(nil, `string(/descendant::w[1])`, "", "text", true, false, false, 0, ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunFiles(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.xml")
	b := filepath.Join(dir, "b.xml")
	if err := os.WriteFile(a, []byte(`<r><p>ab</p><p>cd</p></r>`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(b, []byte(`<r>a<x>bc</x>d</r>`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"pages=" + a, "spans=" + b}, `count(/descendant::x[overlapping::p])`, "", "xml", false, false, false, 0, ""); err != nil {
		t.Fatal(err)
	}
	qf := filepath.Join(dir, "q.xq")
	if err := os.WriteFile(qf, []byte(`string(/descendant::p[1])`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"pages=" + a, "spans=" + b}, "", qf, "xml", false, false, false, 0, ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	cases := []struct {
		name string
		fn   func() error
	}{
		{"no query", func() error { return run(nil, "", "", "xml", true, false, false, 0, "") }},
		{"no hierarchies", func() error { return run(nil, "1", "", "xml", false, false, false, 0, "") }},
		{"missing file", func() error { return run([]string{"a=/nope/missing.xml"}, "1", "", "xml", false, false, false, 0, "") }},
		{"bad query", func() error { return run(nil, "for $x in", "", "xml", true, false, false, 0, "") }},
		{"missing query file", func() error { return run(nil, "", "/nope/q.xq", "xml", true, false, false, 0, "") }},
	}
	for _, tc := range cases {
		if err := tc.fn(); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

func TestHierFlags(t *testing.T) {
	var h hierFlags
	if err := h.Set("a=b.xml"); err != nil {
		t.Fatal(err)
	}
	if err := h.Set("no-equals"); err == nil {
		t.Error("malformed -h accepted")
	}
	if h.String() == "" {
		t.Error("String empty")
	}
}

func TestRunExplain(t *testing.T) {
	if err := run(nil, `/descendant::line`, "", "xml", true, true, false, 0, ""); err != nil {
		t.Fatal(err)
	}
	if err := run(nil, `string(/descendant::w[1])`, "", "text", true, true, false, 0, ""); err != nil {
		t.Fatal(err)
	}
	if err := run(nil, `for $x in`, "", "xml", true, true, false, 0, ""); err == nil {
		t.Fatal("bad query with -explain: want error")
	}
	// -analyze: the instrumented run, plan carries observed wall time.
	if err := run(nil, `count(/descendant::w)`, "", "xml", true, false, true, 0, ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunLimit(t *testing.T) {
	if err := run(nil, `//w`, "", "xml", true, false, false, 1, ""); err != nil {
		t.Fatal(err)
	}
	if err := run(nil, `//leaf()`, "", "text", true, false, false, 3, ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunUpdate(t *testing.T) {
	// Update then query the new version.
	if err := run(nil, `count(//dmg)`, "", "xml", true, false, false, 0, `delete node (//dmg)[1]`); err != nil {
		t.Fatal(err)
	}
	// Update alone prints version + stats JSON.
	if err := run(nil, "", "", "xml", true, false, false, 0, `insert hierarchy "marks" from analyze-string(/, "ge")/child::m`); err != nil {
		t.Fatal(err)
	}
	// Bad update expressions error out.
	if err := run(nil, "", "", "xml", true, false, false, 0, `rename node`); err == nil {
		t.Fatal("expected parse error")
	}
	if err := run(nil, "", "", "xml", true, false, false, 0, `rename node //w as "line"`); err == nil {
		t.Fatal("expected vocabulary error")
	}
}
