// Command mhxq evaluates an extended-XQuery expression over a
// multihierarchical document.
//
// Usage:
//
//	mhxq -h name1=file1.xml -h name2=file2.xml [-f query.xq | -q 'query'] [-format xml|text] [-limit N]
//	mhxq -boethius -q 'count(/descendant::w)'
//	mhxq -boethius -limit 1 -q '//w'
//	mhxq -boethius -explain -q 'for $w in //w return string($w)'
//	mhxq -boethius -analyze -q '//w[@n]'
//	mhxq -boethius -update 'delete node (//dmg)[1]' -q 'count(//dmg)'
//	mhxq -boethius -update 'insert hierarchy "marks" from analyze-string(/, "ge")/child::m'
//
// Each -h flag registers one markup hierarchy (name=path). All encodings
// must share the root element name and base text. With -boethius the
// built-in Figure 1 fixture of the paper is loaded instead. With
// -explain the query is evaluated with per-operator instrumentation and
// a JSON object {"result":…, "plan":…} is printed, where plan is the
// physical operator tree of the whole lowered query — FLWOR clauses,
// predicates and calls included, with index-vs-scan decisions and
// cardinalities. -analyze upgrades that to EXPLAIN ANALYZE: each
// operator additionally reports its observed wall time ("nanos",
// inclusive of children; the root is the total query time). With -limit N the query evaluates through the
// streaming cursor engine and stops after N result items (O(answer)
// work, not O(document)). With -update the update expression (see
// Document.Update) is applied first — copy-on-write, producing a new
// in-process version — and -q then queries the updated document; with
// no -q the new version number and update statistics are printed as
// JSON.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"mhxquery"
	"mhxquery/internal/corpus"
)

type hierFlags []string

func (h *hierFlags) String() string { return strings.Join(*h, ",") }

func (h *hierFlags) Set(v string) error {
	if !strings.Contains(v, "=") {
		return fmt.Errorf("want name=file, got %q", v)
	}
	*h = append(*h, v)
	return nil
}

func main() {
	var hiers hierFlags
	flag.Var(&hiers, "h", "hierarchy as name=file.xml (repeatable)")
	query := flag.String("q", "", "query text")
	queryFile := flag.String("f", "", "file containing the query")
	format := flag.String("format", "xml", "output format: xml or text")
	boethius := flag.Bool("boethius", false, "use the built-in Figure 1 fixture")
	explain := flag.Bool("explain", false, "print the physical plan with per-operator cardinalities as JSON")
	analyze := flag.Bool("analyze", false, "like -explain, with observed per-operator wall time (EXPLAIN ANALYZE)")
	limit := flag.Int("limit", 0, "stop after N result items (0 = all); evaluation is lazy and does only the work the limit needs")
	update := flag.String("update", "", "apply an update expression before querying; without -q, print the new version and update stats as JSON")
	flag.Parse()

	if err := run(hiers, *query, *queryFile, *format, *boethius, *explain, *analyze, *limit, *update); err != nil {
		fmt.Fprintln(os.Stderr, "mhxq:", err)
		os.Exit(1)
	}
}

func run(hiers []string, query, queryFile, format string, boethius, explain, analyze bool, limit int, update string) error {
	src := query
	if queryFile != "" {
		b, err := os.ReadFile(queryFile)
		if err != nil {
			return err
		}
		src = string(b)
	}
	if src == "" && update == "" {
		return fmt.Errorf("no query given (-q, -f or -update)")
	}

	var hs []mhxquery.Hierarchy
	switch {
	case boethius:
		xml := corpus.BoethiusXML()
		for _, name := range corpus.BoethiusHierarchies() {
			hs = append(hs, mhxquery.Hierarchy{Name: name, XML: xml[name]})
		}
	case len(hiers) > 0:
		for _, spec := range hiers {
			name, file, _ := strings.Cut(spec, "=")
			b, err := os.ReadFile(file)
			if err != nil {
				return err
			}
			hs = append(hs, mhxquery.Hierarchy{Name: name, XML: string(b)})
		}
	default:
		return fmt.Errorf("no hierarchies given (-h name=file or -boethius)")
	}

	doc, err := mhxquery.Parse(hs...)
	if err != nil {
		return err
	}
	if update != "" {
		nd, stats, err := doc.Update(update)
		if err != nil {
			return err
		}
		doc = nd
		if src == "" {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			return enc.Encode(map[string]any{"version": doc.Version(), "stats": stats})
		}
	}
	if explain || analyze {
		runExplain := doc.Explain
		if analyze {
			runExplain = doc.ExplainAnalyze
		}
		res, plan, err := runExplain(src)
		if err != nil {
			return err
		}
		rendered := res.String()
		if format == "text" {
			rendered = res.Text()
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(map[string]any{"result": rendered, "plan": plan})
	}
	var res mhxquery.Sequence
	if limit > 0 {
		st, err := doc.Stream(context.Background(), src)
		if err != nil {
			return err
		}
		if res, err = st.Take(limit); err != nil {
			return err
		}
	} else {
		var err error
		if res, err = doc.Query(src); err != nil {
			return err
		}
	}
	if format == "text" {
		fmt.Println(res.Text())
		return nil
	}
	fmt.Println(res.String())
	return nil
}
