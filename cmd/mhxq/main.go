// Command mhxq evaluates an extended-XQuery expression over a
// multihierarchical document.
//
// Usage:
//
//	mhxq -h name1=file1.xml -h name2=file2.xml [-f query.xq | -q 'query'] [-format xml|text]
//	mhxq -boethius -q 'count(/descendant::w)'
//	mhxq -boethius -explain -q '/descendant::line'
//
// Each -h flag registers one markup hierarchy (name=path). All encodings
// must share the root element name and base text. With -boethius the
// built-in Figure 1 fixture of the paper is loaded instead. With
// -explain the query is evaluated with per-operator instrumentation and
// a JSON object {"result":…, "plan":…} is printed, where plan is the
// physical operator tree (index-vs-scan decisions and cardinalities).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"mhxquery"
	"mhxquery/internal/corpus"
)

type hierFlags []string

func (h *hierFlags) String() string { return strings.Join(*h, ",") }

func (h *hierFlags) Set(v string) error {
	if !strings.Contains(v, "=") {
		return fmt.Errorf("want name=file, got %q", v)
	}
	*h = append(*h, v)
	return nil
}

func main() {
	var hiers hierFlags
	flag.Var(&hiers, "h", "hierarchy as name=file.xml (repeatable)")
	query := flag.String("q", "", "query text")
	queryFile := flag.String("f", "", "file containing the query")
	format := flag.String("format", "xml", "output format: xml or text")
	boethius := flag.Bool("boethius", false, "use the built-in Figure 1 fixture")
	explain := flag.Bool("explain", false, "print the physical plan with per-operator cardinalities as JSON")
	flag.Parse()

	if err := run(hiers, *query, *queryFile, *format, *boethius, *explain); err != nil {
		fmt.Fprintln(os.Stderr, "mhxq:", err)
		os.Exit(1)
	}
}

func run(hiers []string, query, queryFile, format string, boethius, explain bool) error {
	src := query
	if queryFile != "" {
		b, err := os.ReadFile(queryFile)
		if err != nil {
			return err
		}
		src = string(b)
	}
	if src == "" {
		return fmt.Errorf("no query given (-q or -f)")
	}

	var hs []mhxquery.Hierarchy
	switch {
	case boethius:
		xml := corpus.BoethiusXML()
		for _, name := range corpus.BoethiusHierarchies() {
			hs = append(hs, mhxquery.Hierarchy{Name: name, XML: xml[name]})
		}
	case len(hiers) > 0:
		for _, spec := range hiers {
			name, file, _ := strings.Cut(spec, "=")
			b, err := os.ReadFile(file)
			if err != nil {
				return err
			}
			hs = append(hs, mhxquery.Hierarchy{Name: name, XML: string(b)})
		}
	default:
		return fmt.Errorf("no hierarchies given (-h name=file or -boethius)")
	}

	doc, err := mhxquery.Parse(hs...)
	if err != nil {
		return err
	}
	if explain {
		res, plan, err := doc.Explain(src)
		if err != nil {
			return err
		}
		rendered := res.String()
		if format == "text" {
			rendered = res.Text()
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(map[string]any{"result": rendered, "plan": plan})
	}
	res, err := doc.Query(src)
	if err != nil {
		return err
	}
	if format == "text" {
		fmt.Println(res.Text())
		return nil
	}
	fmt.Println(res.String())
	return nil
}
