// Command mhbench regenerates every experiment recorded in
// EXPERIMENTS.md: the qualitative reproductions of the paper's figures,
// example and queries (E1–E7, printed as paper-vs-measured) and the
// quantitative tables (P1–P5).
//
// Usage:
//
//	mhbench            # run everything
//	mhbench -e q2      # one experiment: fig1 fig2 q1 q2 ex1 q3 q4 p1..p5
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"time"

	"mhxquery/internal/core"
	"mhxquery/internal/corpus"
	"mhxquery/internal/dom"
	"mhxquery/internal/fragment"
	"mhxquery/internal/store"
	"mhxquery/internal/xmlparse"
	"mhxquery/internal/xquery"
)

func main() {
	exp := flag.String("e", "all", "experiment id: fig1, fig2, q1, q2, ex1, q3, q4, p1..p6 or all")
	flag.Parse()
	if err := run(*exp); err != nil {
		fmt.Fprintln(os.Stderr, "mhbench:", err)
		os.Exit(1)
	}
}

var experiments = []struct {
	id   string
	name string
	fn   func() error
}{
	{"fig1", "E1  Figure 1: the four encodings", expFig1},
	{"fig2", "E2  Figure 2: the KyGODDAG", expFig2},
	{"q1", "E3  Query I.1: lines containing 'singallice'", expQ1},
	{"q2", "E4  Query I.2: lines with damaged words", expQ2},
	{"ex1", "E5  Example 1: analyze-string with a fragment pattern", expEx1},
	{"q3", "E6  Query II.1: substring highlighting", expQ3},
	{"q4", "E7  Query III.1: substring + restoration", expQ4},
	{"p1", "P1  KyGODDAG construction scaling", expP1},
	{"p2", "P2  extended axes: interval vs Definition-1-literal", expP2},
	{"p3", "P3  damaged words: KyGODDAG vs fragmentation vs milestones", expP3},
	{"p4", "P4  analyze-string overlay scaling", expP4},
	{"p5", "P5  parse throughput", expP5},
	{"p6", "P6  binary store: load vs reparse", expP6},
}

func run(exp string) error {
	ran := false
	for _, e := range experiments {
		if exp != "all" && exp != e.id {
			continue
		}
		ran = true
		fmt.Printf("==== %s ====\n", e.name)
		if err := e.fn(); err != nil {
			return fmt.Errorf("%s: %w", e.id, err)
		}
		fmt.Println()
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q", exp)
	}
	return nil
}

func checkQuery(label, src, paper string) error {
	d := corpus.MustBoethius()
	got, err := xquery.EvalString(d, src)
	if err != nil {
		return err
	}
	fmt.Printf("%s\n", label)
	fmt.Printf("  paper:    %s\n", paper)
	fmt.Printf("  measured: %s\n", got)
	verdict := "MATCH (byte-exact)"
	if got != paper {
		verdict = "DIFFERS (see EXPERIMENTS.md for the analysis)"
	}
	fmt.Printf("  verdict:  %s\n", verdict)
	return nil
}

func expFig1() error {
	xml := corpus.BoethiusXML()
	for _, name := range corpus.BoethiusHierarchies() {
		root, err := xmlparse.Parse(xml[name], xmlparse.Options{})
		if err != nil {
			return err
		}
		elems, texts := 0, 0
		walkCount(root, &elems, &texts)
		fmt.Printf("  %-12s %3d elements, %2d text nodes, text %q...\n",
			name, elems, texts, root.TextContent()[:20])
		if root.TextContent() != corpus.BoethiusText {
			return fmt.Errorf("%s does not encode S", name)
		}
	}
	fmt.Printf("  all four encodings share S (%d bytes): alignment verified\n", len(corpus.BoethiusText))
	return nil
}

func expFig2() error {
	d := corpus.MustBoethius()
	s := d.Stats()
	fmt.Printf("  hierarchies=%d elements=%d texts=%d leaves=%d treeEdges=%d leafEdges=%d\n",
		s.Hierarchies, s.Elements, s.Texts, s.Leaves, s.TreeEdges, s.LeafEdges)
	fmt.Printf("  paper: Figure 2 shows the 4 DOM components united at <r> over a\n")
	fmt.Printf("  shared leaf layer; our partition has %d leaves:\n\n", s.Leaves)
	fmt.Print(indent(d.LeafTable(), "  "))
	return nil
}

func expQ1() error {
	return checkQuery("I.1: find lines containing the word 'singallice' (split across lines)",
		`for $l in /descendant::line
  [xdescendant::w[string(.) = 'singallice'] or overlapping::w[string(.) = 'singallice']]
return string($l)`,
		"gesceaftum unawendendne sin gallice sibbe gecynde þa")
}

func expQ2() error {
	if err := checkQuery("I.2 (strict reading of the printed query)",
		`for $l in /descendant::line[xdescendant::w[xancestor::dmg or xdescendant::dmg or overlapping::dmg]]
return ( for $leaf in $l/descendant::leaf() return
   if ($leaf[ancestor::w and ancestor::dmg]) then <b>{$leaf}</b> else $leaf
 , <br/> )`,
		"gesceaftum una<b>w</b>endendne sin<br/>gallice sibbe gecyn<b>de</b> <b>þa</b><br/>"); err != nil {
		return err
	}
	return checkQuery("I.2 (word-level reading — the output the paper prints)",
		`for $l in /descendant::line[xdescendant::w[xancestor::dmg or xdescendant::dmg or overlapping::dmg]]
return ( for $leaf in $l/descendant::leaf() return
   if ($leaf[ancestor::w[xancestor::dmg or xdescendant::dmg or overlapping::dmg]]) then <b>{$leaf}</b> else $leaf
 , <br/> )`,
		"gesceaftum <b>una</b><b>w</b><b>endendne</b> sin<br/>gallice sibbe <b>gecyn</b><b>de</b> <b>þa</b><br/>")
}

func expEx1() error {
	return checkQuery("Example 1: analyze-string(<w>unawendendne</w>, '.*un<a>a</a>we.*')",
		`for $w in /descendant::w[string(.) = 'unawendendne']
return serialize(analyze-string($w, ".*un<a>a</a>we.*"))`,
		`<res><m>un<a>a</a>we</m>ndendne</res>`)
}

func expQ3() error {
	return checkQuery("II.1: words containing 'unawe', match highlighted",
		`for $w in /descendant::w[matches(string(.), ".*unawe.*")]
return (
  let $res := analyze-string($w, ".*unawe.*")
  for $n in $res/child::node()
  return if ($n[self::m]) then <b>{string($n)}</b> else string($n)
  ,
  <br/>
)`,
		"<b>unawe</b>ndendne<br/>")
}

func expQ4() error {
	if err := checkQuery("III.1 (match granularity — the output the paper prints)",
		`for $w in /descendant::w[matches(string(.), ".*unawe.*")]
return (
  let $res := analyze-string($w, ".*unawe.*")
  for $n in $res/child::node()
  return
    if ($n[self::m][xancestor::res('restoration') or xdescendant::res('restoration') or overlapping::res('restoration')])
    then <i><b>{string($n)}</b></i>
    else <b>{string($n)}</b>
  ,
  <br/>
)`,
		"<i><b>unawe</b></i><b>ndendne</b><br/>"); err != nil {
		return err
	}
	return checkQuery("III.1 (leaf granularity — formal reading of the printed query)",
		`for $w in /descendant::w[matches(string(.), ".*unawe.*")]
return (
  let $res := analyze-string($w, ".*unawe.*")
  for $leaf in $res/descendant::leaf()
  return
    if ($leaf/xancestor::m and $leaf/xancestor::res('restoration')) then <i><b>{$leaf}</b></i>
    else if ($leaf/xancestor::m) then <b>{$leaf}</b>
    else string($leaf)
  ,
  <br/>
)`,
		"<i><b>una</b></i><b>w</b><b>e</b>ndendne<br/>")
}

// measure runs fn repeatedly for at least 50ms and returns ns/op.
func measure(fn func()) time.Duration {
	fn() // warm up
	n := 0
	start := time.Now()
	for time.Since(start) < 50*time.Millisecond {
		fn()
		n++
	}
	return time.Since(start) / time.Duration(n)
}

func expP1() error {
	fmt.Printf("  %-12s %14s %12s %10s\n", "words", "build ns/op", "leaves", "elements")
	for _, words := range []int{100, 1000, 10000} {
		c := corpus.Generate(corpus.Params{Seed: 1, Words: words})
		var d *core.Document
		per := measure(func() {
			trees, err := c.Trees()
			if err != nil {
				panic(err)
			}
			d, err = core.Build(trees)
			if err != nil {
				panic(err)
			}
		})
		s := d.Stats()
		fmt.Printf("  %-12d %14d %12d %10d\n", words, per.Nanoseconds(), s.Leaves, s.Elements)
	}
	return nil
}

func expP2() error {
	c := corpus.Generate(corpus.Params{Seed: 2, Words: 500, DamageRate: 0.15})
	d, err := c.Document()
	if err != nil {
		return err
	}
	h := d.HierarchyByName("structure")
	var target = h.Nodes[len(h.Nodes)/2]
	fmt.Printf("  %-24s %14s %12s %14s %12s\n", "axis", "indexed ns/op", "scan ns/op", "literal ns/op", "idx speedup")
	for _, ax := range []core.Axis{core.AxisXAncestor, core.AxisXDescendant, core.AxisXFollowing, core.AxisOverlapping} {
		fast := measure(func() { d.Eval(ax, target) })
		scan := measure(func() { d.EvalScan(ax, target) })
		ref := measure(func() { d.EvalRef(ax, target) })
		fmt.Printf("  %-24s %14d %12d %14d %11.1fx\n", ax, fast.Nanoseconds(), scan.Nanoseconds(),
			ref.Nanoseconds(), float64(scan)/float64(fast))
	}
	return nil
}

func expP3() error {
	fmt.Printf("  %-8s %16s %16s %16s %18s\n", "words", "kygoddag ns/op", "fragment ns/op", "milestone ns/op", "fragment/kygoddag")
	for _, words := range []int{200, 1000, 5000} {
		c := corpus.Generate(corpus.Params{Seed: 3, Words: words, DamageRate: 0.12})
		d, err := c.Document()
		if err != nil {
			return err
		}
		want := len(c.Truth.DamagedWords)
		check := func(got []int) {
			if len(got) != want {
				panic(fmt.Sprintf("damaged = %d, want %d", len(got), want))
			}
		}
		native := measure(func() { check(fragment.NativeDamagedWordIndices(d, "w", "dmg")) })
		flat := fragment.Fragment(d)
		fragT := measure(func() {
			fragment.AnnotateOffsets(flat)
			l := fragment.ReassembleFragments(flat)
			check(fragment.DamagedWordIndices(l["w"], l["dmg"]))
		})
		ms, err := fragment.Milestone(d, "physical")
		if err != nil {
			return err
		}
		msT := measure(func() {
			fragment.AnnotateOffsets(ms)
			l := fragment.ReassembleMilestones(ms)
			check(fragment.DamagedWordIndices(l["w"], l["dmg"]))
		})
		fmt.Printf("  %-8d %16d %16d %16d %17.1fx\n", words,
			native.Nanoseconds(), fragT.Nanoseconds(), msT.Nanoseconds(),
			float64(fragT)/float64(native))
	}
	return nil
}

func expP4() error {
	fmt.Printf("  %-8s %20s\n", "words", "analyze-string ns/op")
	for _, words := range []int{100, 1000, 5000} {
		c := corpus.Generate(corpus.Params{Seed: 4, Words: words})
		d, err := c.Document()
		if err != nil {
			return err
		}
		q := xquery.MustCompile(`count(analyze-string(/descendant::vline[1], "e")/descendant::m)`)
		per := measure(func() {
			if _, err := q.Eval(d); err != nil {
				panic(err)
			}
		})
		fmt.Printf("  %-8d %20d\n", words, per.Nanoseconds())
	}
	return nil
}

func expP5() error {
	fmt.Printf("  %-8s %12s %12s\n", "words", "ns/op", "MB/s")
	for _, words := range []int{1000, 10000} {
		c := corpus.Generate(corpus.Params{Seed: 5, Words: words})
		xml := c.XML["structure"]
		per := measure(func() {
			if _, err := xmlparse.Parse(xml, xmlparse.Options{}); err != nil {
				panic(err)
			}
		})
		mbps := float64(len(xml)) / per.Seconds() / 1e6
		fmt.Printf("  %-8d %12d %12.1f\n", words, per.Nanoseconds(), mbps)
	}
	return nil
}

func expP6() error {
	c := corpus.Generate(corpus.Params{Seed: 6, Words: 2000})
	d, err := c.Document()
	if err != nil {
		return err
	}
	var img bytes.Buffer
	if err := store.Encode(&img, d); err != nil {
		return err
	}
	xmlSize := 0
	for _, x := range c.XML {
		xmlSize += len(x)
	}
	load := measure(func() {
		if _, err := store.Decode(bytes.NewReader(img.Bytes())); err != nil {
			panic(err)
		}
	})
	reparse := measure(func() {
		trees, err := c.Trees()
		if err != nil {
			panic(err)
		}
		if _, err := core.Build(trees); err != nil {
			panic(err)
		}
	})
	fmt.Printf("  image: %d bytes (XML encodings: %d bytes, %.1fx smaller)\n",
		img.Len(), xmlSize, float64(xmlSize)/float64(img.Len()))
	fmt.Printf("  load:    %d ns/op\n", load.Nanoseconds())
	fmt.Printf("  reparse: %d ns/op (%.2fx slower)\n", reparse.Nanoseconds(),
		float64(reparse)/float64(load))
	return nil
}

func indent(s, prefix string) string {
	out := ""
	for _, line := range splitLines(s) {
		out += prefix + line + "\n"
	}
	return out
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}

func walkCount(n *dom.Node, elems, texts *int) {
	switch n.Kind {
	case dom.Element:
		*elems++
	case dom.Text:
		*texts++
	}
	for _, c := range n.Children {
		walkCount(c, elems, texts)
	}
}
