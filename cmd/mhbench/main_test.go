package main

import "testing"

// TestQualitativeExperiments runs every E* reproduction (the P* timing
// tables are exercised by the root benchmarks instead; running them here
// would slow the suite).
func TestQualitativeExperiments(t *testing.T) {
	for _, id := range []string{"fig1", "fig2", "q1", "q2", "ex1", "q3", "q4"} {
		if err := run(id); err != nil {
			t.Errorf("experiment %s: %v", id, err)
		}
	}
}

func TestUnknownExperiment(t *testing.T) {
	if err := run("bogus"); err == nil {
		t.Error("unknown experiment accepted")
	}
}
