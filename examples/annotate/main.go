// Annotate: the read-write workflow the update engine opens — take a
// manuscript, find every damaged word with a regular expression sweep,
// persist the matches as a durable markup hierarchy, wrap and rename
// editorial annotations, and re-query the result. Every step is a
// copy-on-write version: the original document survives untouched and
// remains queryable next to its descendants.
//
// Run: go run ./examples/annotate [-words 60] [-seed 7]
package main

import (
	"flag"
	"fmt"
	"log"

	"mhxquery"
	"mhxquery/internal/corpus"
)

func main() {
	words := flag.Int("words", 60, "manuscript size in words")
	seed := flag.Uint64("seed", 7, "generator seed")
	flag.Parse()

	c := corpus.Generate(corpus.Params{Seed: *seed, Words: *words, DamageRate: 0.12, RestoreRate: 0.15})
	var hs []mhxquery.Hierarchy
	for _, name := range corpus.BoethiusHierarchies() {
		hs = append(hs, mhxquery.Hierarchy{Name: name, XML: c.XML[name]})
	}
	v0, err := mhxquery.Parse(hs...)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("v%d: hierarchies %v\n", v0.Version(), v0.Hierarchies())

	// Step 1 — persist an analyze-string overlay: every "nd"-cluster
	// match becomes a <m> element of a new durable hierarchy "clusters".
	// Inside a query, analyze-string hierarchies vanish when the
	// evaluation ends (Definition 4(5)); "insert hierarchy … from" is
	// their durable form.
	v1, stats, err := v0.Update(`insert hierarchy "clusters" from analyze-string(/, "nd")/child::m`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("v%d: +clusters (%d copied nodes, %d shared hierarchies)\n",
		v1.Version(), stats.NodesCopied, stats.HierarchiesShared)

	// The persisted hierarchy is a first-class citizen: extended axes
	// relate it to every other hierarchy.
	out, err := v1.QueryString(`count(//m[xancestor::w or overlapping::w])`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("clusters inside or overlapping words:", out)

	// Step 2 — annotate: wrap the content of every damaged word in an
	// <unclear> element of the structure hierarchy, one atomic batch.
	v2, stats, err := v1.Update(`insert node unclear into
	    //w[xancestor::dmg or xdescendant::dmg or overlapping::dmg]`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("v%d: wrapped %d damaged words\n", v2.Version(), stats.Edits)

	// Step 3 — revise the annotation vocabulary: rename the damage
	// spans themselves.
	v3, _, err := v2.Update(`rename node //dmg as "damage"`)
	if err != nil {
		log.Fatal(err)
	}

	// Re-query the final version: unclear words per verse line.
	report, err := v3.QueryString(`
for $v at $n in /descendant::vline
let $u := $v/child::w[child::unclear]
where exists($u)
return <vline n="{$n}" unclear="{count($u)}">{
  for $w in $u return <u>{string($w)}</u>
}</vline>`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("v%d report:\n%s\n", v3.Version(), report)

	// Snapshot isolation: the original still answers as parsed.
	orig, err := v0.QueryString(`count(//unclear), count(//damage), count(//dmg)`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("v0 unchanged (unclear, damage, dmg):", orig)
}
