// Damage report: the digital-humanities workflow the paper's
// introduction motivates, at scale.
//
// A synthetic manuscript (four concurrent hierarchies: physical lines,
// verse/words, restorations, damage — the same shape as the Boethius
// fragment) is generated deterministically, and a single extended-XQuery
// pass renders an HTML condition report: every physical line with its
// damaged words highlighted, plus summary statistics — the presentation
// task EPPT used the engine for.
//
// Run: go run ./examples/damage-report [-words 120] [-seed 7]
package main

import (
	"flag"
	"fmt"
	"log"

	"mhxquery"
	"mhxquery/internal/corpus"
)

func main() {
	words := flag.Int("words", 120, "manuscript size in words")
	seed := flag.Uint64("seed", 7, "generator seed")
	flag.Parse()

	c := corpus.Generate(corpus.Params{Seed: *seed, Words: *words, DamageRate: 0.12, RestoreRate: 0.15})
	var hs []mhxquery.Hierarchy
	for _, name := range corpus.BoethiusHierarchies() {
		hs = append(hs, mhxquery.Hierarchy{Name: name, XML: c.XML[name]})
	}
	doc, err := mhxquery.Parse(hs...)
	if err != nil {
		log.Fatal(err)
	}

	// Summary: how many words are damaged, how many split across lines?
	summary, err := doc.QueryString(`
let $words := /descendant::w
let $damaged := $words[xancestor::dmg or xdescendant::dmg or overlapping::dmg]
let $split := $words[overlapping::line]
return <summary words="{count($words)}" damaged="{count($damaged)}" split="{count($split)}"/>`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("summary:", summary)

	// Cross-check against the generator's ground truth.
	fmt.Printf("truth:   words=%d damaged=%d split=%d\n\n",
		len(c.Truth.WordSpans), len(c.Truth.DamagedWords), len(c.Truth.SplitWords))

	// The report: one <div> per physical line; damaged-word leaves bold,
	// restored leaves italic (overlap handled by the leaf layer).
	report, err := doc.QueryString(`
for $l at $n in /descendant::line
return <div class="line" n="{$n}">{
  for $leaf in $l/descendant::leaf()
  return
    if ($leaf[ancestor::w[xancestor::dmg or xdescendant::dmg or overlapping::dmg]]
             [ancestor::res('restoration') or xancestor::res('restoration')])
    then <i><b>{$leaf}</b></i>
    else if ($leaf[ancestor::w[xancestor::dmg or xdescendant::dmg or overlapping::dmg]])
    then <b>{$leaf}</b>
    else if ($leaf/xancestor::res('restoration'))
    then <i>{$leaf}</i>
    else $leaf
}</div>`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("<!-- condition report: <b> = damaged word, <i> = editorial restoration -->")
	fmt.Println(report)

	// Lines in worst condition, ranked by damaged-word count.
	ranked, err := doc.QueryString(`
for $l at $n in /descendant::line
let $bad := count($l/xdescendant::w[xancestor::dmg or xdescendant::dmg or overlapping::dmg])
where $bad > 0
order by $bad descending, $n
return concat("line ", $n, ": ", $bad, " damaged word(s)")`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nworst lines:")
	fmt.Println(ranked)
}
