// Boethius: the paper's running example, end to end.
//
// This example reproduces Section 2 and Section 4 of the paper on the
// Cotton Otho A.vi fragment (Figure 1): it builds the KyGODDAG from the
// four encodings — physical lines, verse structure, editorial
// restorations, damage — prints the Figure 2 structure, and runs every
// query of the paper, comparing against the printed outputs.
//
// Run: go run ./examples/boethius
package main

import (
	"fmt"
	"log"

	"mhxquery"
)

// The four Figure 1 encodings of the same manuscript text (see DESIGN.md
// §5 for the canonical whitespace).
const (
	physical    = `<r><line>gesceaftum unawendendne sin</line><line>gallice sibbe gecynde þa</line></r>`
	structure   = `<r><vline><w>gesceaftum</w> <w>unawendendne</w> </vline><vline><w>singallice</w> <w>sibbe</w> <w>gecynde</w> </vline><vline><w>þa</w></vline></r>`
	restoration = `<r><res>gesceaftum una</res>wendendne s<res>in</res><res>gallice sibbe gecyn</res>de þa</r>`
	damage      = `<r>gesceaftum una<dmg>w</dmg>endendne singallice sibbe gecyn<dmg>de þa</dmg></r>`
)

func main() {
	doc, err := mhxquery.Parse(
		mhxquery.Hierarchy{Name: "physical", XML: physical},
		mhxquery.Hierarchy{Name: "structure", XML: structure},
		mhxquery.Hierarchy{Name: "restoration", XML: restoration},
		mhxquery.Hierarchy{Name: "damage", XML: damage},
	)
	if err != nil {
		log.Fatal(err)
	}

	st := doc.Stats()
	fmt.Printf("KyGODDAG: %d hierarchies, %d elements, %d leaves (Figure 2)\n\n",
		st.Hierarchies, st.Elements, st.Leaves)
	fmt.Println(doc.LeafTable())

	show := func(title, query string) {
		fmt.Printf("--- %s ---\n", title)
		out, err := doc.QueryString(query)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(out)
		fmt.Println()
	}

	show("Query I.1: lines containing the word 'singallice'",
		`for $l in /descendant::line
  [xdescendant::w[string(.) = 'singallice'] or overlapping::w[string(.) = 'singallice']]
return string($l)`)

	show("Query I.2: lines with damaged words, damaged words highlighted",
		`for $l in /descendant::line[xdescendant::w[xancestor::dmg or xdescendant::dmg or overlapping::dmg]]
return ( for $leaf in $l/descendant::leaf() return
   if ($leaf[ancestor::w[xancestor::dmg or xdescendant::dmg or overlapping::dmg]]) then <b>{$leaf}</b> else $leaf
 , <br/> )`)

	show("Example 1: analyze-string with an XML-fragment pattern",
		`for $w in /descendant::w[string(.) = 'unawendendne']
return serialize(analyze-string($w, ".*un<a>a</a>we.*"))`)

	show("Query II.1: words containing 'unawe', match highlighted",
		`for $w in /descendant::w[matches(string(.), ".*unawe.*")]
return (
  let $res := analyze-string($w, ".*unawe.*")
  for $n in $res/child::node()
  return if ($n[self::m]) then <b>{string($n)}</b> else string($n)
  ,
  <br/>
)`)

	show("Query III.1: matches bold, restored matches also italic",
		`for $w in /descendant::w[matches(string(.), ".*unawe.*")]
return (
  let $res := analyze-string($w, ".*unawe.*")
  for $n in $res/child::node()
  return
    if ($n[self::m][xancestor::res('restoration') or xdescendant::res('restoration') or overlapping::res('restoration')])
    then <i><b>{string($n)}</b></i>
    else <b>{string($n)}</b>
  ,
  <br/>
)`)

	// Beyond the paper: a structural census in one query.
	show("Census: damage per verse line",
		`for $v in /descendant::vline
return <verse n="{count($v/preceding-sibling::vline) + 1}"
  words="{count($v/xdescendant::w)}"
  damaged="{count($v/xdescendant::w[xancestor::dmg or xdescendant::dmg or overlapping::dmg])}"/>`)
}
