// Concordance: regular-expression text search that respects no markup
// boundary, related back to the document structure.
//
// This is the paper's Section 2-II/III scenario generalized: build a
// keyword-in-context concordance for a regex over a manuscript. Matches
// are materialized as a temporary hierarchy by analyze-string, so each
// match can be asked *structural* questions — which physical line(s) it
// touches, whether it crosses a line break, whether it lies in restored
// or damaged text — even though the matches overlap the markup freely.
//
// Run: go run ./examples/concordance [-pattern 'e[a-z]r'] [-words 150]
package main

import (
	"flag"
	"fmt"
	"log"

	"mhxquery"
	"mhxquery/internal/corpus"
)

func main() {
	pattern := flag.String("pattern", "e[a-z]r", "regular expression to search for")
	words := flag.Int("words", 150, "manuscript size in words")
	seed := flag.Uint64("seed", 11, "generator seed")
	flag.Parse()

	c := corpus.Generate(corpus.Params{Seed: *seed, Words: *words, DamageRate: 0.1, RestoreRate: 0.12})
	var hs []mhxquery.Hierarchy
	for _, name := range corpus.BoethiusHierarchies() {
		hs = append(hs, mhxquery.Hierarchy{Name: name, XML: c.XML[name]})
	}
	doc, err := mhxquery.Parse(hs...)
	if err != nil {
		log.Fatal(err)
	}

	// One query: tag every match over the whole document, then describe
	// each match's relationship to the structure.
	q, err := mhxquery.Compile(`
let $res := analyze-string(/, $pattern)
for $m at $i in $res/descendant::m
let $lines := $m/xancestor::line | $m/overlapping::line
return <hit n="{$i}"
  match="{string($m)}"
  lines="{count($lines)}"
  split="{if (count($lines) > 1) then "yes" else "no"}"
  damaged="{if ($m/xancestor::dmg or $m/xdescendant::dmg or $m/overlapping::dmg) then "yes" else "no"}"
  restored="{if ($m/xancestor::res('restoration') or $m/xdescendant::res('restoration') or $m/overlapping::res('restoration')) then "yes" else "no"}"/>`)
	if err != nil {
		log.Fatal(err)
	}
	res, err := q.EvalWith(doc, map[string]any{"pattern": *pattern})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("concordance for /%s/ over %d words — %d hits\n\n", *pattern, *words, res.Len())
	for i := 0; i < res.Len(); i++ {
		fmt.Println(res.Item(i).Node().XML())
	}

	fmt.Println("\nKWIC:")
	text := doc.Text()
	// A second, node-returning query gives us the <m> nodes themselves;
	// their spans survive the evaluation, so Go code can slice S.
	mq, err := mhxquery.Compile(`analyze-string(/, $pattern)/descendant::m`)
	if err != nil {
		log.Fatal(err)
	}
	ms, err := mq.EvalWith(doc, map[string]any{"pattern": *pattern})
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < ms.Len(); i++ {
		m := ms.Item(i).Node()
		s, e := m.Span()
		lo := s - 12
		if lo < 0 {
			lo = 0
		}
		hi := e + 12
		if hi > len(text) {
			hi = len(text)
		}
		fmt.Printf("  %12s[%s]%s\n", text[lo:s], text[s:e], text[e:hi])
	}
}
