// Edition: an EPPT-style presentation pipeline.
//
// The paper's engine served as "the main search and results presentation
// engine for the Edition Production and Presentation Technology (EPPT)".
// This example plays that role end to end: it renders a complete HTML
// "reading view" of the Boethius fragment in one extended-XQuery pass —
// physical line numbers in the margin, damaged text marked up, editorial
// restorations italicized, verse boundaries indicated — the combination
// of four concurrent hierarchies that no single XSLT over one tree can
// produce.
//
// Run: go run ./examples/edition > edition.html
package main

import (
	"fmt"
	"log"

	"mhxquery"
)

const (
	physical    = `<r><line>gesceaftum unawendendne sin</line><line>gallice sibbe gecynde þa</line></r>`
	structure   = `<r><vline><w>gesceaftum</w> <w>unawendendne</w> </vline><vline><w>singallice</w> <w>sibbe</w> <w>gecynde</w> </vline><vline><w>þa</w></vline></r>`
	restoration = `<r><res>gesceaftum una</res>wendendne s<res>in</res><res>gallice sibbe gecyn</res>de þa</r>`
	damage      = `<r>gesceaftum una<dmg>w</dmg>endendne singallice sibbe gecyn<dmg>de þa</dmg></r>`
)

// editionQuery renders the whole document: for every physical line, a
// numbered row whose leaves are decorated by consulting the damage and
// restoration hierarchies; a word index with per-word condition follows.
const editionQuery = `
<article>
  <section class="text">{
    for $l at $n in /descendant::line
    return
      <p class="ms-line">
        <span class="lineno">{$n}</span>
        {
          for $leaf in $l/descendant::leaf()
          return
            if ($leaf/xancestor::dmg and $leaf/xancestor::res('restoration'))
            then <span class="damaged restored">{$leaf}</span>
            else if ($leaf/xancestor::dmg)
            then <span class="damaged">{$leaf}</span>
            else if ($leaf/xancestor::res('restoration'))
            then <span class="restored">{$leaf}</span>
            else $leaf
        }
      </p>
  }</section>
  <section class="apparatus">{
    for $w at $i in /descendant::w
    let $damaged := $w[xancestor::dmg or xdescendant::dmg or overlapping::dmg]
    let $split := $w[overlapping::line]
    order by string($w)
    return
      <entry n="{$i}" word="{string($w)}"
        damaged="{if ($damaged) then "yes" else "no"}"
        split="{if ($split) then "yes" else "no"}"
        verse="{count($w/xancestor::vline/preceding-sibling::vline) + 1}"/>
  }</section>
</article>`

func main() {
	doc, err := mhxquery.Parse(
		mhxquery.Hierarchy{Name: "physical", XML: physical},
		mhxquery.Hierarchy{Name: "structure", XML: structure},
		mhxquery.Hierarchy{Name: "restoration", XML: restoration},
		mhxquery.Hierarchy{Name: "damage", XML: damage},
	)
	if err != nil {
		log.Fatal(err)
	}
	body, err := doc.QueryString(editionQuery)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(`<!DOCTYPE html>
<html lang="ang"><head><meta charset="utf-8"/>
<title>Cotton Otho A.vi — fragment</title>
<style>
  .ms-line { font-family: serif; }
  .lineno { color: #999; margin-right: 1em; }
  .damaged { border-bottom: 2px dotted #c00; }
  .restored { font-style: italic; color: #246; }
  .apparatus entry { display: block; font-family: monospace; }
</style></head><body>`)
	fmt.Println(body)
	fmt.Println(`</body></html>`)
}
