// Observability: metrics scrape and EXPLAIN ANALYZE from the API.
//
// A small corpus is built, a query burst (with repeats, so the
// compiled-query and plan caches see both misses and hits) and one
// update drive the engine's instrumentation, then two views of the
// same run are printed: the Prometheus text scrape a monitoring
// system would collect from mhserve's GET /metrics, and the timed
// operator tree of one query — EXPLAIN ANALYZE, with each operator's
// observed cardinalities and wall time.
//
// Run: go run ./examples/observability
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"mhxquery"
)

func main() {
	coll := mhxquery.NewCollection(mhxquery.CollectionOptions{Workers: 4})

	// Three tiny manuscripts, pages vs. words, each with one word split
	// across a page break.
	for i, text := range []string{"lorem", "ipsum", "dolor"} {
		name := fmt.Sprintf("ms%d", i+1)
		doc, err := mhxquery.Parse(
			mhxquery.Hierarchy{Name: "pages",
				XML: fmt.Sprintf(`<r><page>%s wo</page><page>rld</page></r>`, text)},
			mhxquery.Hierarchy{Name: "words",
				XML: fmt.Sprintf(`<r><w>%s</w> <w>world</w></r>`, text)},
		)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := coll.Put(name, doc); err != nil {
			log.Fatal(err)
		}
	}

	// Query burst: the first round misses both caches, the second hits.
	for round := 0; round < 2; round++ {
		if _, err := coll.QueryAll(`count(/descendant::w[overlapping::page])`); err != nil {
			log.Fatal(err)
		}
	}
	// One copy-on-write update, to populate the commit-latency histogram.
	if _, _, err := coll.Update("ms1", `delete node (//w)[1]`); err != nil {
		log.Fatal(err)
	}

	// EXPLAIN ANALYZE: the query runs instrumented; every operator
	// reports calls/rows and inclusive wall time, the root total time.
	_, plan, err := coll.ExplainAnalyze(context.Background(), "ms2",
		`for $w in /descendant::w[overlapping::page] return string($w)`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("EXPLAIN ANALYZE:")
	printPlan(plan, 1)

	// The scrape a Prometheus server would collect from GET /metrics.
	fmt.Println("\nmetrics scrape:")
	if err := coll.Metrics().WritePrometheus(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// The same registry, as a flat snapshot for programmatic checks.
	snap := coll.Metrics().Snapshot()
	fmt.Printf("\nplan cache hit rate: %.0f%%\n",
		100*snap[`mhx_cache_requests_total{cache="plan",result="hit"}`]/
			(snap[`mhx_cache_requests_total{cache="plan",result="hit"}`]+
				snap[`mhx_cache_requests_total{cache="plan",result="miss"}`]))
	fmt.Printf("name-index builds:   %.0f\n", snap["mhx_nameindex_builds_total"])
}

func printPlan(op *mhxquery.PlanOp, depth int) {
	detail := ""
	if op.Detail != "" {
		detail = " " + op.Detail
	}
	scan := ""
	if op.Index {
		scan = " [index]"
	}
	fmt.Printf("%s%s%s%s  calls=%d in=%d out=%d time=%v\n",
		strings.Repeat("  ", depth), op.Op, detail, scan,
		op.Calls, op.InRows, op.OutRows, time.Duration(op.Nanos))
	for _, k := range op.Children {
		printPlan(k, depth+1)
	}
}
