// Quickstart: two concurrent hierarchies over one text, one overlap query.
//
// A tiny document is annotated twice — once with its physical layout
// (pages) and once with its linguistic structure (words). The word
// "world" is split across the page break, which well-formed XML cannot
// represent in a single tree; the multihierarchical document and the
// `overlapping` axis handle it directly.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"mhxquery"
)

func main() {
	doc, err := mhxquery.Parse(
		mhxquery.Hierarchy{Name: "pages", XML: `<r><page>Hello wo</page><page>rld again</page></r>`},
		mhxquery.Hierarchy{Name: "words", XML: `<r><w>Hello</w> <w>world</w> <w>again</w></r>`},
	)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("base text:   ", doc.Text())
	fmt.Println("hierarchies: ", doc.Hierarchies())

	// Which words cross a page boundary?
	out, err := doc.QueryString(
		`for $w in /descendant::w[overlapping::page] return string($w)`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("split words: ", out)

	// How many pages does each word touch?
	out, err = doc.QueryString(`for $w in /descendant::w
return <word text="{string($w)}" pages="{count($w/xancestor::page | $w/overlapping::page)}"/>`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("report:      ", out)

	// The leaf partition induced by both hierarchies.
	fmt.Println("\nleaf partition:")
	for _, l := range doc.Leaves() {
		s, e := l.Span()
		fmt.Printf("  [%2d,%2d) %q\n", s, e, l.Text())
	}
}
