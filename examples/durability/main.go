// Durability: crash and recover a collection.
//
// A collection is opened on disk, a document is ingested and edited
// through the write-ahead log — every acknowledged update is fsynced
// before Update returns. Then the process "crashes": the collection is
// abandoned without Close, and the torn half-record a power cut could
// leave mid-append is simulated by writing a few garbage bytes onto
// the log's tail. Reopening the directory replays the log: the torn
// tail is tolerated (truncated and counted), every acknowledged update
// is recovered, and the document resumes at exactly the version the
// last acknowledgment promised.
//
// Run: go run ./examples/durability
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"mhxquery"
)

func main() {
	dir, err := os.MkdirTemp("", "durability")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Snapshots are disabled so the whole edit history stays in the
	// log and the recovery below has something to replay. (Production
	// leaves them on: images are then written in the background and
	// the log is compacted once they cover it.)
	opts := mhxquery.CollectionOptions{
		FlushWindow:   200 * time.Microsecond,
		SnapshotEvery: -1,
		SnapshotBytes: -1,
	}
	coll, err := mhxquery.OpenCollection(dir, opts)
	if err != nil {
		log.Fatal(err)
	}

	doc, err := mhxquery.Parse(
		mhxquery.Hierarchy{Name: "pages", XML: `<r><page>Hello wo</page><page>rld</page></r>`},
		mhxquery.Hierarchy{Name: "words", XML: `<r><w>Hello</w> <w>world</w></r>`},
	)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := coll.Put("liber", doc); err != nil {
		log.Fatal(err)
	}

	// Eight durable edits. Each Update returns only after its log
	// record is fsynced: the returned version is a promise.
	var acked uint64
	for i := 0; i < 8; i++ {
		d, _, err := coll.Update("liber", `rename node (//w)[1] as "w"`)
		if err != nil {
			log.Fatal(err)
		}
		acked = d.Version()
	}
	fmt.Printf("acked %d updates; last durable version %d\n", acked, acked)

	// Crash. No Close, no flush — the directory is left exactly as a
	// kill -9 would leave it. On top, fake the append the crash
	// interrupted: three garbage bytes that are not even a whole
	// record length prefix.
	walPath := filepath.Join(dir, "wal.log")
	f, err := os.OpenFile(walPath, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := f.Write([]byte{0xde, 0xad, 0xbe}); err != nil {
		log.Fatal(err)
	}
	f.Close()
	fmt.Println("crashed: collection abandoned, torn half-record on the log tail")

	// Recovery: load snapshots, replay the log, truncate the torn
	// tail. Corruption anywhere before the tail would instead fail
	// this open loudly (MHXQ0202).
	reopened, err := mhxquery.OpenCollection(dir, opts)
	if err != nil {
		log.Fatal(err)
	}
	defer reopened.Close()
	rec := reopened.Recovery()
	fmt.Printf("recovered in %v: %d snapshot(s) loaded, %d record(s) replayed, %d torn byte(s) truncated\n",
		rec.Elapsed.Round(time.Millisecond), rec.Snapshots, rec.Replayed, rec.TornTailBytes)

	d, ok := reopened.Get("liber")
	if !ok {
		log.Fatal("document lost")
	}
	fmt.Printf("document %q is back at version %d\n", "liber", d.Version())
	if d.Version() != acked {
		log.Fatalf("acked version %d, recovered %d: durability broken", acked, d.Version())
	}
	fmt.Println("every acknowledged update survived the crash")
}
